// Figure 2 (+ Appendix F, Figures 21-22): the headline comparison.
//
// Contenders are *enumerated from the scheduler registry* — every
// registered multi-threaded scheduler competes, plus a tuned-SMQ entry
// whose parameters mirror the paper's Table 12 per-workload tuning.
// Speedups are versus the classic Multi-Queue on ONE thread, exactly as
// in the paper; total work is reported next to each speedup.
#include <iostream>

#include "harness/bench_main.h"
#include "registry/scheduler_registry.h"

namespace {

using namespace smq;
using namespace smq::bench;

bool social_graph(const Workload& w) {
  return w.name.find("TWITTER") != std::string::npos ||
         w.name.find("WEB") != std::string::npos ||
         w.name.find("social") != std::string::npos;
}

/// Task-specific tuned SMQ parameters, mirroring the paper's Table 12
/// tuning (road SSSP/A* like tiny batches + frequent stealing; social
/// graphs like bigger batches + rare stealing).
ParamMap tuned_smq_params(const Workload& w) {
  const bool social = social_graph(w);
  ParamMap p;
  switch (w.algo) {
    case Algo::kSssp:
      p.set("p-steal", social ? "1/16" : "1/4");
      p.set("steal-size", social ? "64" : "1");
      break;
    case Algo::kBfs:
      p.set("p-steal", social ? "1/8" : "1/4");
      p.set("steal-size", social ? "32" : "1");
      break;
    case Algo::kAstar:
      p.set("p-steal", "1/8");
      p.set("steal-size", "2");
      break;
    case Algo::kMst:
      p.set("p-steal", "1/32");
      p.set("steal-size", "64");
      break;
  }
  return p;
}

/// Per-workload OBIM/PMOD delta (paper: tuned per benchmark, Appendix B).
/// Social graphs have short distance ranges (uniform weights in [0,255]
/// over ~5 hops) and want fine deltas; road graphs have deep ranges.
std::string tuned_delta_shift(const Workload& w) {
  const bool social = social_graph(w);
  switch (w.algo) {
    case Algo::kSssp: return social ? "4" : "8";
    case Algo::kBfs: return "0";   // levels are already coarse
    case Algo::kAstar: return "8";
    case Algo::kMst: return "2";   // degree priorities are small
  }
  return "8";
}

struct Contender {
  std::string label;
  std::string sched;  // registry key
  ParamMap params;
};

/// One contender per registered multi-threaded scheduler, with
/// paper-tuned parameters where the paper tunes them, plus the tuned SMQ
/// as an extra entry.
std::vector<Contender> contenders(const Workload& w, unsigned max_threads) {
  std::vector<Contender> all;
  all.push_back({"SMQ (Tuned)", "smq", tuned_smq_params(w)});

  const std::string numa_spec =
      max_threads >= 4 ? "nodes=2,k=8" : "";
  for (const SchedulerEntry& entry : SchedulerRegistry::instance().entries()) {
    if (entry.max_threads == 1) continue;  // baselines run separately
    Contender c;
    c.label = entry.name;
    c.sched = entry.name;
    if (entry.name == "smq") {
      c.label = "smq (default)";
      if (!numa_spec.empty()) c.params.set("numa", numa_spec);
    } else if (entry.name == "mq-opt") {
      if (!numa_spec.empty()) c.params.set("numa", numa_spec);
    } else if (entry.name == "obim" || entry.name == "pmod") {
      c.params.set("delta-shift", tuned_delta_shift(w));
      c.params.set("chunk-size", "64");
    }
    all.push_back(std::move(c));
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Figure 2 / Figures 21-22: main scheduler comparison",
                 opts);

  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset)
                : standard_workloads(opts.subset.empty() ? "" : opts.subset);
  if (!opts.full && opts.subset.empty()) {
    // Quick default: a representative six of the twelve.
    std::vector<Workload> picked;
    for (auto& w : workloads) {
      if (w.name == "SSSP USA" || w.name == "SSSP TWITTER" ||
          w.name == "BFS USA" || w.name == "BFS TWITTER" ||
          w.name == "A* USA" || w.name == "MST USA") {
        picked.push_back(std::move(w));
      }
    }
    workloads = std::move(picked);
  }

  const std::vector<unsigned> threads =
      opts.full ? opts.thread_counts()
                : std::vector<unsigned>{1, opts.max_threads};

  for (Workload& w : workloads) {
    // The paper's Figure 2 baseline: classic MQ on a single thread.
    ParamMap base_params;
    base_params.set("c", "4");
    const Measurement base =
        run_registry_measurement(w, "mq", base_params, 1, opts.repetitions);
    std::cout << w.name << "  (baseline: 1-thread MQ "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    std::vector<std::string> headers{"scheduler"};
    for (unsigned t : threads) {
      headers.push_back("T=" + std::to_string(t));
      headers.push_back("work@" + std::to_string(t));
    }
    TablePrinter table(std::move(headers));

    for (const Contender& c : contenders(w, opts.max_threads)) {
      std::vector<std::string> row{c.label};
      for (unsigned t : threads) {
        const Measurement m =
            run_registry_measurement(w, c.sched, c.params, t, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        row.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        row.push_back(TablePrinter::fmt(m.work_increase));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "speedup vs 1-thread classic MQ; work = tasks / sequential "
               "reference tasks.\n";
  return 0;
}
