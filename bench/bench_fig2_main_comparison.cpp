// Figure 2 (+ Appendix F, Figures 21-22): the headline comparison —
// SMQ (tuned and default, heap and skip-list local queues), the
// optimized NUMA-aware classic Multi-Queue, OBIM, PMOD, RELD, and
// SprayList across the twelve benchmarks, sweeping thread counts.
// Speedups are versus the classic Multi-Queue on ONE thread, exactly as
// in the paper; total work is reported next to each speedup.
#include <iostream>

#include "harness/bench_main.h"

namespace {

using namespace smq;
using namespace smq::bench;

/// Task-specific tuned SMQ parameters, mirroring the paper's Table 12
/// tuning (road SSSP/A* like tiny batches + frequent stealing; social
/// graphs like bigger batches + rare stealing).
SchedulerSpec tuned_smq(const Workload& w) {
  SchedulerSpec spec;
  spec.kind = SchedKind::kSmqHeap;
  spec.label = "SMQ (Tuned)";
  const bool social = w.name.find("TWITTER") != std::string::npos ||
                      w.name.find("WEB") != std::string::npos ||
                      w.name.find("social") != std::string::npos;
  switch (w.algo) {
    case Algo::kSssp:
      spec.p_steal = social ? 1.0 / 16 : 1.0 / 4;
      spec.steal_size = social ? 64 : 1;
      break;
    case Algo::kBfs:
      spec.p_steal = social ? 1.0 / 8 : 1.0 / 4;
      spec.steal_size = social ? 32 : 1;
      break;
    case Algo::kAstar:
      spec.p_steal = 1.0 / 8;
      spec.steal_size = 2;
      break;
    case Algo::kMst:
      spec.p_steal = 1.0 / 32;
      spec.steal_size = 64;
      break;
  }
  return spec;
}

/// Per-workload OBIM/PMOD delta (paper: tuned per benchmark, Appendix B).
/// Social graphs have short distance ranges (uniform weights in [0,255]
/// over ~5 hops) and want fine deltas; road graphs have deep ranges.
unsigned tuned_delta_shift(const Workload& w) {
  const bool social = w.name.find("TWITTER") != std::string::npos ||
                      w.name.find("WEB") != std::string::npos ||
                      w.name.find("social") != std::string::npos;
  switch (w.algo) {
    case Algo::kSssp: return social ? 4 : 8;
    case Algo::kBfs: return 0;   // levels are already coarse
    case Algo::kAstar: return 8;
    case Algo::kMst: return 2;   // degree priorities are small
  }
  return 8;
}

std::vector<SchedulerSpec> contenders(const Workload& w,
                                      unsigned max_threads) {
  std::vector<SchedulerSpec> specs;
  specs.push_back(tuned_smq(w));

  SchedulerSpec smq_default;
  smq_default.kind = SchedKind::kSmqHeap;
  smq_default.label = "SMQ (Default)";
  smq_default.steal_size = 4;
  smq_default.p_steal = 1.0 / 8;
  smq_default.numa_nodes = max_threads >= 4 ? 2 : 0;  // K=8 default
  smq_default.numa_k = 8.0;
  specs.push_back(smq_default);

  SchedulerSpec smq_skip;
  smq_skip.kind = SchedKind::kSmqSkipList;
  smq_skip.label = "SMQ (skip-list)";
  specs.push_back(smq_skip);

  SchedulerSpec mq_opt;
  mq_opt.kind = SchedKind::kOptimizedMq;
  mq_opt.label = "MQ Optimized NUMA";
  mq_opt.insert_policy = InsertPolicy::kBatching;
  mq_opt.insert_batch = 16;
  mq_opt.delete_policy = DeletePolicy::kBatching;
  mq_opt.delete_batch = 16;
  mq_opt.numa_nodes = max_threads >= 4 ? 2 : 0;
  mq_opt.numa_k = 8.0;
  specs.push_back(mq_opt);

  SchedulerSpec obim;
  obim.kind = SchedKind::kObim;
  obim.delta_shift = tuned_delta_shift(w);
  obim.chunk_size = 64;
  specs.push_back(obim);

  SchedulerSpec pmod;
  pmod.kind = SchedKind::kPmod;
  pmod.delta_shift = tuned_delta_shift(w);
  pmod.chunk_size = 64;
  specs.push_back(pmod);

  SchedulerSpec reld;
  reld.kind = SchedKind::kReld;
  specs.push_back(reld);

  SchedulerSpec spray;
  spray.kind = SchedKind::kSprayList;
  specs.push_back(spray);
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Figure 2 / Figures 21-22: main scheduler comparison",
                 opts);

  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset)
                : standard_workloads(opts.subset.empty() ? "" : opts.subset);
  if (!opts.full && opts.subset.empty()) {
    // Quick default: a representative six of the twelve.
    std::vector<Workload> picked;
    for (auto& w : workloads) {
      if (w.name == "SSSP USA" || w.name == "SSSP TWITTER" ||
          w.name == "BFS USA" || w.name == "BFS TWITTER" ||
          w.name == "A* USA" || w.name == "MST USA") {
        picked.push_back(std::move(w));
      }
    }
    workloads = std::move(picked);
  }

  const std::vector<unsigned> threads =
      opts.full ? opts.thread_counts()
                : std::vector<unsigned>{1, opts.max_threads};

  for (Workload& w : workloads) {
    // The paper's Figure 2 baseline: classic MQ on a single thread.
    SchedulerSpec base_spec;
    base_spec.kind = SchedKind::kClassicMq;
    base_spec.mq_c = 4;
    const Measurement base = run_measurement(w, base_spec, 1, opts.repetitions);
    std::cout << w.name << "  (baseline: 1-thread MQ "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    std::vector<std::string> headers{"scheduler"};
    for (unsigned t : threads) {
      headers.push_back("T=" + std::to_string(t));
      headers.push_back("work@" + std::to_string(t));
    }
    TablePrinter table(std::move(headers));

    for (SchedulerSpec spec : contenders(w, opts.max_threads)) {
      std::vector<std::string> row{spec.display_name()};
      for (unsigned t : threads) {
        const Measurement m = run_measurement(w, spec, t, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        row.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        row.push_back(TablePrinter::fmt(m.work_increase));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "speedup vs 1-thread classic MQ; work = tasks / sequential "
               "reference tasks.\n";
  return 0;
}
