// Figure 1 (+ Appendix D.1-D.2, Figures 17-18, Tables 12-13): ablation
// of the SMQ's stealing probability p_steal and steal-buffer size vs the
// classic Multi-Queue with C = 4 — a thin wrapper over the `fig1` suite
// expansion (registry/suites.h): the smq-p* presets x steal-size grid,
// run through the shared registry runners. Identical to
// `smq_run --suite fig1`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("fig1", argc, argv);
}
