// Figure 1 (+ Appendix D.1-D.2, Figures 17-18, Tables 12-13): ablation
// of the SMQ's stealing probability p_steal and steal-buffer size, in
// terms of speedup and work increase relative to the classic Multi-Queue
// with C = 4 at the same thread count — the paper's heatmaps, printed as
// one table per benchmark with the best cell starred.
#include <iostream>

#include "harness/bench_main.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble(
      "Figure 1 / Figures 17-18 / Tables 12-13: SMQ(heap) ablation", opts);

  const std::vector<double> steal_probs =
      opts.full
          ? std::vector<double>{1.0 / 2, 1.0 / 4, 1.0 / 8, 1.0 / 16,
                                1.0 / 32, 1.0 / 64}
          : std::vector<double>{1.0 / 2, 1.0 / 8, 1.0 / 32};
  const std::vector<std::size_t> buffer_sizes =
      opts.full ? std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64, 128}
                : std::vector<std::size_t>{1, 4, 32};
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  for (Workload& w : workloads) {
    // Paper baseline: classic MQ, C = 4, same thread count.
    SchedulerSpec baseline;
    baseline.kind = SchedKind::kClassicMq;
    baseline.mq_c = 4;
    const Measurement base =
        run_measurement(w, baseline, opts.max_threads, opts.repetitions);

    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms, work "
              << TablePrinter::fmt(base.work_increase) << ")\n";

    std::vector<std::string> headers{"p_steal \\ size"};
    for (std::size_t s : buffer_sizes) headers.push_back(std::to_string(s));
    TablePrinter speedups(headers);
    TablePrinter work(headers);

    double best = 0;
    std::string best_cell;
    for (double p : steal_probs) {
      std::vector<std::string> srow{"1/" + std::to_string(
                                              static_cast<int>(1.0 / p))};
      std::vector<std::string> wrow = srow;
      for (std::size_t size : buffer_sizes) {
        SchedulerSpec spec;
        spec.kind = SchedKind::kSmqHeap;
        spec.p_steal = p;
        spec.steal_size = size;
        const Measurement m =
            run_measurement(w, spec, opts.max_threads, opts.repetitions);
        const double speedup =
            m.seconds > 0 ? base.seconds / m.seconds : 0;
        srow.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        wrow.push_back(TablePrinter::fmt(m.work_increase));
        if (speedup > best) {
          best = speedup;
          best_cell = srow.front() + " x " + std::to_string(size);
        }
      }
      speedups.add_row(std::move(srow));
      work.add_row(std::move(wrow));
    }
    std::cout << "speedup vs MQ(C=4) @" << opts.max_threads << " threads:\n";
    speedups.print(std::cout);
    std::cout << "work increase vs sequential:\n";
    work.print(std::cout);
    std::cout << "best configuration: " << best_cell << " ("
              << TablePrinter::fmt(best) << "x)\n\n";
  }
  return 0;
}
