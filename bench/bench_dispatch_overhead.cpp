// Dispatch-overhead micro-bench: what does the registry boundary cost?
//
// Runs SSSP under the hot scheduler keys in all three dispatch modes —
// virtual (AnyScheduler, one indirect call per push/pop), batched
// (AnyScheduler, one indirect call per task batch) and static (directly
// instantiated concrete scheduler) — and reports per-mode throughput
// plus the ratio to the virtual baseline. This is the number the README
// quotes and the justification for publishing absolute figures through
// the registry: if batched/static ~= virtual, the erasure is in the
// noise; where it is not, `smq_run --dispatch` offers the faster path.
//
//   SMQ_BENCH_SCALE=0.1 SMQ_BENCH_THREADS=2 ./bench_dispatch_overhead
//   ./bench_dispatch_overhead --vertices 100000 --threads 4 --reps 5
//                             --batch-size 64 [--json PATH]
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "harness/workloads.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace {

using namespace smq;

struct Row {
  std::string scheduler;
  std::string dispatch;
  double seconds = 0;
  std::uint64_t tasks = 0;
  double mops = 0;          // million executed tasks per second
  double vs_virtual = 1.0;  // throughput ratio against the virtual row
  bool valid = false;
};

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = bench::bench_scale();
  const auto vertices = static_cast<std::uint64_t>(args.get_int(
      "vertices", static_cast<std::int64_t>(50000 * scale) + 1000));
  const auto threads = static_cast<unsigned>(args.get_int(
      "threads", static_cast<std::int64_t>(bench::bench_max_threads())));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string batch_size = args.get("batch-size", "64");

  ParamMap params;
  params.set("vertices", std::to_string(vertices));
  params.set("seed", "42");
  const GraphInstance graph = GraphRegistry::instance().create("rand", params);
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find("sssp");
  const AlgoReference reference = algo->make_reference(graph, params);

  std::cout << "=== dispatch overhead: SSSP / " << graph.name << " / "
            << threads << " threads, best of " << reps << " ===\n\n";

  const std::vector<std::string> schedulers = static_dispatch_keys();
  const char* modes[] = {"virtual", "batched", "static"};
  std::vector<Row> rows;

  for (const std::string& name : schedulers) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    double virtual_throughput = 0;
    for (const char* mode_name : modes) {
      const DispatchMode mode = *parse_dispatch_mode(mode_name);
      ParamMap run_params = params;
      if (mode == DispatchMode::kBatched) {
        run_params.set("batch-size", batch_size);
      }
      Row row;
      row.scheduler = name;
      row.dispatch = mode_name;
      for (int rep = 0; rep < reps; ++rep) {
        AlgoResult result;
        if (mode == DispatchMode::kStatic) {
          result = *run_static_dispatch(name, "sssp", graph, threads,
                                        run_params, &reference);
        } else {
          AnyScheduler sched = entry->make(threads, run_params);
          result = algo->run(graph, sched, threads, run_params, &reference);
        }
        if (rep == 0 || result.run.seconds < row.seconds) {
          row.seconds = result.run.seconds;
          row.tasks = result.run.stats.pops;
          row.valid = result.valid;
        }
      }
      row.mops = row.seconds > 0
                     ? static_cast<double>(row.tasks) / row.seconds / 1e6
                     : 0;
      if (mode == DispatchMode::kVirtual) virtual_throughput = row.mops;
      row.vs_virtual =
          virtual_throughput > 0 ? row.mops / virtual_throughput : 1.0;
      rows.push_back(row);
    }
  }

  TablePrinter table({"scheduler", "dispatch", "time ms", "tasks", "Mtasks/s",
                      "vs virtual", "valid"});
  for (const Row& row : rows) {
    table.add_row({row.scheduler, row.dispatch,
                   TablePrinter::fmt(row.seconds * 1e3),
                   std::to_string(row.tasks), TablePrinter::fmt(row.mops),
                   TablePrinter::fmt(row.vs_virtual),
                   row.valid ? "yes" : "NO"});
  }
  table.print(std::cout);

  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    JsonWriter json(out);
    json.begin_object();
    json.member("tool", "bench_dispatch_overhead");
    json.member("threads", threads);
    json.member("vertices", vertices);
    json.key("results").begin_array();
    for (const Row& row : rows) {
      json.begin_object();
      json.member("scheduler", row.scheduler);
      json.member("dispatch", row.dispatch);
      json.member("seconds", row.seconds);
      json.member("tasks", row.tasks);
      json.member("mtasks_per_sec", row.mops);
      json.member("vs_virtual", row.vs_virtual);
      json.member("valid", row.valid);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << '\n';
    std::cout << "\nwrote " << json_path << "\n";
  }

  bool all_valid = true;
  for (const Row& row : rows) all_valid = all_valid && row.valid;
  return all_valid ? 0 : 1;
}
