// Dispatch-overhead micro-bench: what does the registry boundary cost?
//
// Runs SSSP under the hot scheduler keys in all three dispatch modes —
// virtual (AnyScheduler, one indirect call per push/pop), batched
// (AnyScheduler, one indirect call per task batch) and static (directly
// instantiated concrete scheduler) — and reports per-mode throughput
// plus the ratio to the virtual baseline. This is the number the README
// quotes and the justification for publishing absolute figures through
// the registry: if batched/static ~= virtual, the erasure is in the
// noise; where it is not, `smq_run --dispatch` offers the faster path.
//
// Schedulers with a "reclaim" tunable get a fourth row, batched+reclaim
// (epoch-based reclamation on), whose vs_batched ratio is the cost of
// epoch pinning on the hot path; --max-reclaim-overhead 0.05 turns that
// ratio into a gate (exit 1 when reclamation costs more than 5%). Every
// non-static row also reports the scheduler's steady-state memory
// footprint after the run — with reclamation on this is the plateau the
// soak test watches; off, it is the leak-until-destroy high-water mark.
//
//   SMQ_BENCH_SCALE=0.1 SMQ_BENCH_THREADS=2 ./bench_dispatch_overhead
//   ./bench_dispatch_overhead --vertices 100000 --threads 4 --reps 5
//                             --batch-size 64 [--json PATH]
//                             [--max-reclaim-overhead 0.05]
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "harness/workloads.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace {

using namespace smq;

struct Row {
  std::string scheduler;
  std::string dispatch;
  double seconds = 0;
  std::uint64_t tasks = 0;
  double mops = 0;          // million executed tasks per second
  double vs_virtual = 1.0;  // throughput ratio against the virtual row
  double vs_batched = 0;    // reclaim rows: ratio against plain batched
  std::size_t footprint = 0;  // scheduler bytes after the run (0 = n/a)
  bool valid = false;
};

struct ModeSpec {
  const char* label;
  DispatchMode mode;
  bool reclaim;
};

bool has_tunable(const SchedulerEntry& entry, const std::string& name) {
  for (const Tunable& t : entry.tunables) {
    if (t.name == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = bench::bench_scale();
  const auto vertices = static_cast<std::uint64_t>(args.get_int(
      "vertices", static_cast<std::int64_t>(50000 * scale) + 1000));
  const auto threads = static_cast<unsigned>(args.get_int(
      "threads", static_cast<std::int64_t>(bench::bench_max_threads())));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string batch_size = args.get("batch-size", "64");
  const double max_reclaim_overhead =
      args.get_double("max-reclaim-overhead", 0);

  ParamMap params;
  params.set("vertices", std::to_string(vertices));
  params.set("seed", "42");
  const GraphInstance graph = GraphRegistry::instance().create("rand", params);
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find("sssp");
  const AlgoReference reference = algo->make_reference(graph, params);

  std::cout << "=== dispatch overhead: SSSP / " << graph.name << " / "
            << threads << " threads, best of " << reps << " ===\n\n";

  const std::vector<std::string> schedulers = static_dispatch_keys();
  std::vector<Row> rows;
  bool reclaim_gate_ok = true;

  for (const std::string& name : schedulers) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    std::vector<ModeSpec> modes = {
        {"virtual", DispatchMode::kVirtual, false},
        {"batched", DispatchMode::kBatched, false},
        {"static", DispatchMode::kStatic, false},
    };
    if (has_tunable(*entry, "reclaim")) {
      modes.push_back({"batched+reclaim", DispatchMode::kBatched, true});
    }
    double virtual_throughput = 0;
    double batched_throughput = 0;
    for (const ModeSpec& spec : modes) {
      ParamMap run_params = params;
      if (spec.mode == DispatchMode::kBatched) {
        run_params.set("batch-size", batch_size);
      }
      if (spec.reclaim) run_params.set("reclaim", "epoch");
      Row row;
      row.scheduler = name;
      row.dispatch = spec.label;
      for (int rep = 0; rep < reps; ++rep) {
        AlgoResult result;
        std::size_t footprint = 0;
        if (spec.mode == DispatchMode::kStatic) {
          result = *run_static_dispatch(name, "sssp", graph, threads,
                                        run_params, &reference);
        } else {
          AnyScheduler sched = entry->make(threads, run_params);
          result = algo->run(graph, sched, threads, run_params, &reference);
          footprint = sched.memory_footprint();
        }
        if (rep == 0 || result.run.seconds < row.seconds) {
          row.seconds = result.run.seconds;
          row.tasks = result.run.stats.pops;
          row.valid = result.valid;
          row.footprint = footprint;
        }
      }
      row.mops = row.seconds > 0
                     ? static_cast<double>(row.tasks) / row.seconds / 1e6
                     : 0;
      if (spec.mode == DispatchMode::kVirtual) virtual_throughput = row.mops;
      if (spec.mode == DispatchMode::kBatched && !spec.reclaim) {
        batched_throughput = row.mops;
      }
      row.vs_virtual =
          virtual_throughput > 0 ? row.mops / virtual_throughput : 1.0;
      if (spec.reclaim && batched_throughput > 0) {
        row.vs_batched = row.mops / batched_throughput;
        if (max_reclaim_overhead > 0 &&
            row.vs_batched < 1.0 - max_reclaim_overhead) {
          reclaim_gate_ok = false;
          std::cerr << "RECLAIM GATE: " << name << " batched+reclaim at "
                    << TablePrinter::fmt(row.vs_batched)
                    << "x of batched (allowed >= "
                    << TablePrinter::fmt(1.0 - max_reclaim_overhead) << "x)\n";
        }
      }
      rows.push_back(row);
    }
  }

  TablePrinter table({"scheduler", "dispatch", "time ms", "tasks", "Mtasks/s",
                      "vs virtual", "vs batched", "mem KiB", "valid"});
  for (const Row& row : rows) {
    table.add_row({row.scheduler, row.dispatch,
                   TablePrinter::fmt(row.seconds * 1e3),
                   std::to_string(row.tasks), TablePrinter::fmt(row.mops),
                   TablePrinter::fmt(row.vs_virtual),
                   row.vs_batched > 0 ? TablePrinter::fmt(row.vs_batched)
                                      : std::string("-"),
                   row.footprint > 0
                       ? TablePrinter::fmt(
                             static_cast<double>(row.footprint) / 1024.0, 1)
                       : std::string("-"),
                   row.valid ? "yes" : "NO"});
  }
  table.print(std::cout);

  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    JsonWriter json(out);
    json.begin_object();
    json.member("tool", "bench_dispatch_overhead");
    json.member("threads", threads);
    json.member("vertices", vertices);
    json.key("results").begin_array();
    for (const Row& row : rows) {
      json.begin_object();
      json.member("scheduler", row.scheduler);
      json.member("dispatch", row.dispatch);
      json.member("seconds", row.seconds);
      json.member("tasks", row.tasks);
      json.member("mtasks_per_sec", row.mops);
      json.member("vs_virtual", row.vs_virtual);
      if (row.vs_batched > 0) json.member("vs_batched", row.vs_batched);
      json.member("memory_footprint_bytes",
                  static_cast<std::uint64_t>(row.footprint));
      json.member("valid", row.valid);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << '\n';
    std::cout << "\nwrote " << json_path << "\n";
  }

  bool all_valid = true;
  for (const Row& row : rows) all_valid = all_valid && row.valid;
  return all_valid && reclaim_gate_ok ? 0 : 1;
}
