// Service-throughput bench: the persistent SchedulerService pool against
// the spawn-per-query baseline it exists to replace.
//
// Three row families over one road graph and one seeded query set:
//  * spawn      — one run_parallel spawn/join + a fresh O(V) distance
//                 array per query (the pre-service cost model),
//  * closed     — every query submitted to the running service up front;
//                 its qps is the capacity number the perf gate tracks,
//  * poisson@R  — open-loop Poisson arrivals at each --qps point; the
//                 latency percentiles include queue wait, so offered
//                 load beyond capacity shows up as p99 blow-up.
//
// The headline "service vs spawn" ratio is printed per thread count; the
// JSON trajectory follows write_service_json (same shape as `smq_run
// --service --json`), so tools/perf_check.py can read either source.
//
//   SMQ_BENCH_SCALE=0.1 SMQ_BENCH_THREADS=2 ./bench_service_qps
//   ./bench_service_qps --vertices 40000 --threads 1,4 --queries 200
//                       --qps 500,2000 --reps 3 [--json PATH]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/workloads.h"
#include "registry/graph_registry.h"
#include "registry/params.h"
#include "registry/service_factory.h"
#include "service/query.h"
#include "service/service_driver.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const double scale = bench::bench_scale();
  const auto vertices = static_cast<std::uint64_t>(args.get_int(
      "vertices", static_cast<std::int64_t>(40000 * scale) + 1000));
  const std::vector<unsigned> thread_counts = parse_thread_list(
      args.get("threads", "1," + std::to_string(bench::bench_max_threads())));
  const auto queries =
      static_cast<std::size_t>(args.get_int("queries", 150));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string sched_name = args.get("sched", "smq");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("query-seed", 1));
  std::vector<double> qps_points;
  for (const std::string& part : split_list(args.get("qps", ""), ',')) {
    qps_points.push_back(std::strtod(part.c_str(), nullptr));
  }

  ServiceOptions opts;
  opts.lanes = static_cast<unsigned>(args.get_int("lanes", 0));
  opts.batch_size = static_cast<std::size_t>(args.get_int("batch-size", 8));

  ParamMap params;
  params.set("vertices", std::to_string(vertices));
  params.set("seed", "42");
  const GraphInstance graph = GraphRegistry::instance().create("road", params);
  const std::vector<Query> query_set = make_query_set(graph, queries, seed);

  std::cout << "=== service qps: " << sched_name << " / " << graph.name
            << " / " << queries << " queries, best of " << reps << " ===\n\n";

  const ServiceReference reference =
      measure_service_reference(graph, query_set, reps);

  ServiceReport report;
  report.graph = graph;
  report.params = params;
  report.queries = query_set.size();
  report.seed = seed;
  report.reference = &reference;

  for (const unsigned threads : thread_counts) {
    // Spawn-per-query baseline (closed by construction).
    ServiceRow spawn_row;
    spawn_row.scheduler = sched_name;
    spawn_row.threads = threads;
    spawn_row.spawn_baseline = true;
    spawn_row.batch_size = opts.batch_size;
    spawn_row.reps = reps;
    for (int rep = 0; rep < reps; ++rep) {
      const DriveResult drive = drive_spawn_per_query(
          graph, sched_name, params, threads, query_set, opts.batch_size);
      if (rep > 0 && drive.seconds >= spawn_row.seconds) continue;
      LatencyHistogram latencies;
      for (const QueryResult& r : drive.results) {
        latencies.record_seconds(r.latency_seconds);
      }
      finalize_service_row(spawn_row, drive, latencies, &reference);
    }
    report.rows.push_back(spawn_row);
    const double spawn_qps = spawn_row.qps;

    // Service rows: closed loop first, then each offered-rate point.
    std::vector<double> drive_points{0.0};
    drive_points.insert(drive_points.end(), qps_points.begin(),
                        qps_points.end());
    for (const double qps : drive_points) {
      ServiceRow row;
      row.scheduler = sched_name;
      row.threads = service_effective_threads(sched_name, threads);
      row.batch_size = opts.batch_size;
      row.offered_qps = qps;
      row.reps = reps;
      for (int rep = 0; rep < reps; ++rep) {
        auto service = make_service(sched_name, threads, params, graph, opts);
        const DriveResult drive = drive_service(*service, query_set, qps, seed);
        service->stop();
        if (rep > 0 && drive.seconds >= row.seconds) continue;
        row.lanes = service->num_lanes();
        row.stats = service->worker_stats();
        row.memory_footprint = service->memory_footprint();
        finalize_service_row(row, drive, service->latency_histogram(),
                             &reference);
      }
      if (qps <= 0 && spawn_qps > 0) {
        std::cout << "threads " << threads << ": service "
                  << TablePrinter::fmt(row.qps, 1) << " qps vs spawn "
                  << TablePrinter::fmt(spawn_qps, 1) << " qps ("
                  << TablePrinter::fmt(row.qps / spawn_qps) << "x)\n";
      }
      report.rows.push_back(row);
    }
  }

  std::cout << "\n";
  print_service_table(std::cout, report);
  if (!emit_service_json(report, args.get("json"), std::cout, std::cerr)) {
    return 1;
  }

  for (const ServiceRow& row : report.rows) {
    if (row.validated && !row.valid) {
      std::cerr << "\nvalidation FAILED\n";
      return 1;
    }
  }
  return 0;
}
