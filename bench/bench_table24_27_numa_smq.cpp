// Tables 24-27 (Appendix E.5-E.6): NUMA weight K ablation for the
// Stealing Multi-Queue with d-ary heap and skip-list local queues.
// The paper's finding: SMQ is largely insensitive to K because most
// operations are local anyway — only steal victims are sampled, which
// the measured remote fraction (now wired through ExecStats) makes
// directly visible next to each speedup.
//
// Grid points come from the shared run-driver sweep grid
// (registry/numa_grid.h) and every cell runs through the registry
// runners, exactly like `smq_run --numa-grid --sched smq,smq-skiplist`.
#include <iostream>

#include "harness/bench_main.h"
#include "registry/numa_grid.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Tables 24-27: NUMA weight K ablation, SMQ", opts);

  const unsigned numa_nodes = opts.max_threads >= 4 ? 2 : 1;
  const std::string grid_spec =
      "nodes=" + std::to_string(numa_nodes) +
      (opts.full ? ":k=1,2,4,8,16,32,64,128,256" : ":k=1,8,64");
  const std::vector<NumaGridPoint> grid = parse_numa_grid(grid_spec);
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  for (const char* sched : {"smq", "smq-skiplist"}) {
    std::cout << "--- " << sched << " ---\n";
    for (Workload& w : workloads) {
      ParamMap baseline;
      baseline.set("c", "4");
      const Measurement base = run_registry_measurement(
          w, "mq", baseline, opts.max_threads, opts.repetitions);

      std::vector<std::string> headers{"benchmark"};
      for (const NumaGridPoint& point : grid) {
        headers.push_back("K=" + std::to_string(static_cast<int>(point.k)));
      }
      TablePrinter table(std::move(headers));
      std::vector<std::string> row{w.name};
      double best = 0;
      std::size_t best_col = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        ParamMap params;
        apply_numa_point(params, grid[i]);
        const Measurement m = run_registry_measurement(
            w, sched, params, opts.max_threads, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        std::string cell = m.valid ? TablePrinter::fmt(speedup) : "INVALID";
        if (m.sampled_accesses > 0) {
          cell += " r=" + TablePrinter::fmt(m.remote_frac);
        }
        row.push_back(std::move(cell));
        if (speedup > best) {
          best = speedup;
          best_col = i + 1;
        }
      }
      row[best_col] += "*";
      table.add_row(std::move(row));
      table.print(std::cout);
    }
    std::cout << '\n';
  }
  std::cout << "speedup vs MQ(C=4) at " << opts.max_threads
            << " threads; r= is the measured remote fraction of sampled "
               "steal victims;\n(*) best K per row.\n";
  return 0;
}
