// Tables 24-27 (Appendix E.5-E.6): NUMA weight K ablation for the
// Stealing Multi-Queue with d-ary heap and skip-list local queues.
// The paper's finding: SMQ is largely insensitive to K because most
// operations are local anyway — only steal victims are sampled.
#include <iostream>

#include "harness/bench_main.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Tables 24-27: NUMA weight K ablation, SMQ", opts);

  const std::vector<double> ks =
      opts.full ? std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256}
                : std::vector<double>{1, 8, 64};
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();
  const unsigned numa_nodes = opts.max_threads >= 4 ? 2 : 1;

  for (const SchedKind kind :
       {SchedKind::kSmqHeap, SchedKind::kSmqSkipList}) {
    std::cout << "--- " << sched_name(kind) << " ---\n";
    for (Workload& w : workloads) {
      SchedulerSpec baseline;
      baseline.kind = SchedKind::kClassicMq;
      baseline.mq_c = 4;
      const Measurement base =
          run_measurement(w, baseline, opts.max_threads, opts.repetitions);

      std::vector<std::string> headers{"benchmark"};
      for (double k : ks) {
        headers.push_back("K=" + std::to_string(static_cast<int>(k)));
      }
      TablePrinter table(std::move(headers));
      std::vector<std::string> row{w.name};
      double best = 0;
      std::size_t best_col = 0;
      for (std::size_t i = 0; i < ks.size(); ++i) {
        SchedulerSpec spec;
        spec.kind = kind;
        spec.numa_nodes = numa_nodes;
        spec.numa_k = ks[i];
        const Measurement m =
            run_measurement(w, spec, opts.max_threads, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        row.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        if (speedup > best) {
          best = speedup;
          best_col = i + 1;
        }
      }
      row[best_col] += "*";
      table.add_row(std::move(row));
      table.print(std::cout);
    }
    std::cout << '\n';
  }
  std::cout << "speedup vs MQ(C=4) at " << opts.max_threads
            << " threads; (*) best K per row.\n";
  return 0;
}
