// Figures 19-20 / Tables 14-15 (Appendix D.3-D.4): the SMQ ablation
// with skip-list local queues, paired with the d-ary-heap variant at
// the same p_steal x steal-size grid so the gap is visible — a thin
// wrapper over the `fig19_20` suite expansion (registry/suites.h): the
// smq-sl-p* and smq-p* presets x steal-size grid. Identical to
// `smq_run --suite fig19_20`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("fig19_20", argc, argv);
}
