// Figures 19-20 / Tables 14-15 (Appendix D.3-D.4): the SMQ ablation with
// skip-list local queues — p_steal x steal-buffer size, speedup and work
// increase vs classic MQ (C = 4). The paper finds the skip-list variant
// consistently slower than the d-ary-heap variant; this bench pairs each
// cell with the heap variant's number so the gap is visible.
#include <iostream>

#include "harness/bench_main.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble(
      "Figures 19-20 / Tables 14-15: SMQ(skip-list) ablation", opts);

  const std::vector<double> steal_probs =
      opts.full ? std::vector<double>{1.0 / 2, 1.0 / 4, 1.0 / 8, 1.0 / 16,
                                      1.0 / 32}
                : std::vector<double>{1.0 / 4, 1.0 / 16};
  const std::vector<std::size_t> buffer_sizes =
      opts.full ? std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}
                : std::vector<std::size_t>{1, 8, 64};
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  for (Workload& w : workloads) {
    SchedulerSpec baseline;
    baseline.kind = SchedKind::kClassicMq;
    baseline.mq_c = 4;
    const Measurement base =
        run_measurement(w, baseline, opts.max_threads, opts.repetitions);
    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    std::vector<std::string> headers{"p_steal \\ size"};
    for (std::size_t s : buffer_sizes) headers.push_back(std::to_string(s));
    TablePrinter speedups(headers);
    TablePrinter work(headers);
    double best_skip = 0, heap_at_best = 0;
    for (double p : steal_probs) {
      std::vector<std::string> srow{
          "1/" + std::to_string(static_cast<int>(1.0 / p))};
      std::vector<std::string> wrow = srow;
      for (std::size_t size : buffer_sizes) {
        SchedulerSpec spec;
        spec.kind = SchedKind::kSmqSkipList;
        spec.p_steal = p;
        spec.steal_size = size;
        const Measurement m =
            run_measurement(w, spec, opts.max_threads, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        srow.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        wrow.push_back(TablePrinter::fmt(m.work_increase));
        if (speedup > best_skip) {
          best_skip = speedup;
          SchedulerSpec heap_spec = spec;
          heap_spec.kind = SchedKind::kSmqHeap;
          const Measurement h = run_measurement(w, heap_spec,
                                                opts.max_threads,
                                                opts.repetitions);
          heap_at_best = h.seconds > 0 ? base.seconds / h.seconds : 0;
        }
      }
      speedups.add_row(std::move(srow));
      work.add_row(std::move(wrow));
    }
    std::cout << "speedup vs MQ(C=4):\n";
    speedups.print(std::cout);
    std::cout << "work increase:\n";
    work.print(std::cout);
    std::cout << "best skip-list cell: " << TablePrinter::fmt(best_skip)
              << "x; d-ary heap at same parameters: "
              << TablePrinter::fmt(heap_at_best) << "x\n\n";
  }
  return 0;
}
