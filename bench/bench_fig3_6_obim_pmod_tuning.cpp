// Figures 3-6 (Appendix B): tuning heatmaps for OBIM and PMOD — delta
// (bucket width, as log2) x CHUNK_SIZE, speedup vs the classic
// Multi-Queue with C = 4 at the same thread count.
#include <iostream>

#include "harness/bench_main.h"

namespace {

using namespace smq;
using namespace smq::bench;

void sweep(Workload& w, SchedKind kind, const BenchOptions& opts,
           const std::vector<unsigned>& shifts,
           const std::vector<std::size_t>& chunks, double base_seconds) {
  std::vector<std::string> headers{"delta \\ chunk"};
  for (std::size_t c : chunks) headers.push_back(std::to_string(c));
  TablePrinter speedups(headers);
  TablePrinter work(headers);
  double best = 0;
  std::string best_cell = "-";
  for (unsigned shift : shifts) {
    std::vector<std::string> srow{"2^" + std::to_string(shift)};
    std::vector<std::string> wrow = srow;
    for (std::size_t chunk : chunks) {
      SchedulerSpec spec;
      spec.kind = kind;
      spec.delta_shift = shift;
      spec.chunk_size = chunk;
      const Measurement m =
          run_measurement(w, spec, opts.max_threads, opts.repetitions);
      const double speedup = m.seconds > 0 ? base_seconds / m.seconds : 0;
      srow.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
      wrow.push_back(TablePrinter::fmt(m.work_increase));
      if (speedup > best) {
        best = speedup;
        best_cell = "delta 2^" + std::to_string(shift) + ", chunk " +
                    std::to_string(chunk);
      }
    }
    speedups.add_row(std::move(srow));
    work.add_row(std::move(wrow));
  }
  std::cout << sched_name(kind) << " speedup vs MQ(C=4):\n";
  speedups.print(std::cout);
  std::cout << sched_name(kind) << " work increase:\n";
  work.print(std::cout);
  std::cout << "best: " << best_cell << " (" << TablePrinter::fmt(best)
            << "x)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Figures 3-6: OBIM and PMOD delta x CHUNK_SIZE tuning",
                 opts);

  const std::vector<unsigned> shifts =
      opts.full ? std::vector<unsigned>{0, 2, 4, 6, 8, 10, 12, 14}
                : std::vector<unsigned>{0, 4, 8, 12};
  const std::vector<std::size_t> chunks =
      opts.full ? std::vector<std::size_t>{8, 16, 32, 64, 128, 256}
                : std::vector<std::size_t>{16, 64, 256};
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  for (Workload& w : workloads) {
    SchedulerSpec baseline;
    baseline.kind = SchedKind::kClassicMq;
    baseline.mq_c = 4;
    const Measurement base =
        run_measurement(w, baseline, opts.max_threads, opts.repetitions);
    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";
    sweep(w, SchedKind::kObim, opts, shifts, chunks, base.seconds);
    sweep(w, SchedKind::kPmod, opts, shifts, chunks, base.seconds);
  }
  return 0;
}
