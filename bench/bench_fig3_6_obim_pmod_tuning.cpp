// Figures 3-6 (Appendix B): tuning study for OBIM and PMOD — delta
// (bucket width, as log2) x CHUNK_SIZE — as a thin wrapper over the
// `fig3_6` suite expansion (registry/suites.h): the obim-d*/pmod-d*
// presets x chunk-size grid, run through the shared registry runners.
// Identical to `smq_run --suite fig3_6`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("fig3_6", argc, argv);
}
