// Theorem 1 validation: empirical rank of deletions in the discrete
// simulator of Section 3's analytical model.
//
// Reproduced claims:
//  * classic Multi-Queue over m queues: expected rank O(m) — rank grows
//    linearly in m;
//  * SMQ: expected average rank O(nB(1+gamma)/p_steal *
//    log((1+gamma)/p_steal)) — rank grows as p_steal shrinks, linearly
//    in batch size B, and degrades with scheduler skew gamma.
#include <iostream>

#include "harness/bench_main.h"
#include "rank/rank_sim.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Theorem 1: empirical rank bounds", opts);

  const std::size_t elements = opts.full ? (1u << 18) : (1u << 15);

  {
    std::cout << "classic MQ: mean deletion rank vs m (expect ~linear in m)\n";
    TablePrinter table({"m (queues)", "mean rank", "mean rank / m",
                        "max rank"});
    for (unsigned m : {4u, 8u, 16u, 32u, 64u, 128u}) {
      RankSimConfig cfg;
      cfg.process = RankProcess::kClassicMq;
      cfg.num_queues = m;
      cfg.num_elements = elements;
      cfg.seed = 100 + m;
      const RankSimResult r = simulate_rank(cfg);
      table.add_row({std::to_string(m), TablePrinter::fmt(r.mean_rank),
                     TablePrinter::fmt(r.mean_rank / m),
                     std::to_string(r.max_rank)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "SMQ (n=16, B=1, gamma=0): mean rank vs p_steal\n";
    TablePrinter table({"p_steal", "mean rank", "rank * p_steal / n",
                        "max rank"});
    for (int k = 0; k <= 6; ++k) {
      const double p = 1.0 / static_cast<double>(1 << k);
      RankSimConfig cfg;
      cfg.process = RankProcess::kSmq;
      cfg.num_queues = 16;
      cfg.p_steal = p;
      cfg.num_elements = elements;
      cfg.seed = 200 + k;
      const RankSimResult r = simulate_rank(cfg);
      table.add_row({"1/" + std::to_string(1 << k),
                     TablePrinter::fmt(r.mean_rank),
                     TablePrinter::fmt(r.mean_rank * p / cfg.num_queues),
                     std::to_string(r.max_rank)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "SMQ (n=16, p_steal=1/4, gamma=0): mean rank vs batch B "
                 "(expect ~linear in B)\n";
    TablePrinter table({"B", "mean rank", "mean rank / B", "max rank"});
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u}) {
      RankSimConfig cfg;
      cfg.process = RankProcess::kSmq;
      cfg.num_queues = 16;
      cfg.p_steal = 0.25;
      cfg.batch_size = b;
      cfg.num_elements = elements;
      cfg.seed = 300 + b;
      const RankSimResult r = simulate_rank(cfg);
      table.add_row({std::to_string(b), TablePrinter::fmt(r.mean_rank),
                     TablePrinter::fmt(r.mean_rank / b),
                     std::to_string(r.max_rank)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "SMQ (n=16, B=1, p_steal=1/8): mean rank vs scheduler skew "
                 "gamma\n";
    TablePrinter table({"gamma", "mean rank", "max rank"});
    for (double gamma : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
      RankSimConfig cfg;
      cfg.process = RankProcess::kSmq;
      cfg.num_queues = 16;
      cfg.p_steal = 0.125;
      cfg.gamma = gamma;
      cfg.num_elements = elements;
      cfg.seed = 400;
      const RankSimResult r = simulate_rank(cfg);
      table.add_row({TablePrinter::fmt(gamma), TablePrinter::fmt(r.mean_rank),
                     std::to_string(r.max_rank)});
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: 'mean rank / m', 'rank * p_steal / n' and "
               "'mean rank / B' staying within a small constant factor\n"
               "across rows validates the O(m), O(n/p_steal) and O(nB) "
               "scaling of Theorem 1 (log factors show as mild drift).\n";
  return 0;
}
