// Extension bench (paper Section 6 future work): residual-priority
// PageRank under every scheduler family. The interesting metric is
// *total vertex updates*: in the additive push formulation, residuals
// keep accumulating after a task is enqueued, so the task's priority
// (quantized residual at push time) goes stale, and schedulers that
// delay processing (RELD's local FIFO) harvest larger accumulated
// residuals per task. This is a genuinely different regime from the
// graph-search workloads: eager priority order buys faster residual
// decay per wall-second but not fewer updates.
#include <cmath>
#include <iostream>

#include "algorithms/pagerank.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "harness/bench_main.h"
#include "queues/classic_multiqueue.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/spraylist.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Extension: residual-priority PageRank", opts);

  const unsigned scale = opts.full ? 14 : 11;
  const Graph graph = make_rmat(scale, {.seed = 57});
  PageRankOptions pr;
  // Push-based PR does O(initial mass / tolerance) harvests in the worst
  // case; 1e-4 keeps the bench seconds-fast while the error column still
  // separates the schedulers.
  pr.tolerance = 1e-4;
  const SequentialPageRankResult ref =
      sequential_pagerank(graph, {.tolerance = 1e-8}, 500);
  std::cout << "RMAT scale " << scale << ": " << graph.num_vertices()
            << " vertices, " << graph.num_edges() << " edges; power "
            << "iteration needed " << ref.iterations << " rounds = "
            << ref.iterations * graph.num_vertices() << " vertex updates\n\n";

  const unsigned threads = opts.max_threads;
  TablePrinter table({"scheduler", "tasks", "wasted", "time ms",
                      "max err vs power iter"});
  auto report = [&](const std::string& name, auto&& sched) {
    const PageRankResult r = parallel_pagerank(graph, sched, threads, pr);
    double max_err = 0;
    for (std::size_t v = 0; v < ref.ranks.size(); ++v) {
      max_err = std::max(max_err, std::abs(r.ranks[v] - ref.ranks[v]));
    }
    table.add_row({name, std::to_string(r.run.stats.pops),
                   std::to_string(r.run.stats.wasted),
                   TablePrinter::fmt(r.run.seconds * 1e3),
                   TablePrinter::fmt(max_err, 4)});
  };

  report("SMQ (heap, default)",
         StealingMultiQueue<>(threads, {.steal_size = 4, .p_steal = 0.125}));
  report("classic MQ (C=4)", ClassicMultiQueue(threads, {}));
  report("OBIM (delta 2^2)",
         Obim(threads, {.chunk_size = 32, .delta_shift = 2}));
  report("PMOD", Pmod(threads, {.chunk_size = 32, .delta_shift = 2}));
  report("RELD", ReldQueue(threads, {}));
  report("SprayList", SprayList(threads, {}));

  table.print(std::cout);
  std::cout << "\nAll schedulers converge to the same fixpoint (error column "
               "~ n * tolerance).\nTask counts show the accumulation effect: "
               "delaying schedulers harvest bigger residuals per task, eager "
               "priority order processes more, smaller harvests — see "
               "EXPERIMENTS.md.\n";
  return 0;
}
