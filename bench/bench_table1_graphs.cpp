// Table 1: input graph inventory — paper-pinned vs measured.
//
// Two sections:
//  1. Real road networks: every 9th-DIMACS graph from the catalog that
//     is present under --graph-dir (fetched by tools/fetch_dimacs.py)
//     is loaded through the registry (so the binary CSR cache and mmap
//     path are exercised end to end when --graph-cache is given) and
//     its measured |V|, |E|, degree and weight-range properties are
//     printed next to the paper's Table 1 values. Any mismatch is a
//     hard failure (exit 1): a graph that disagrees with the published
//     sizes is truncated or corrupt, and every speedup measured on it
//     would be fiction.
//  2. The synthetic stand-ins (USA/WEST/TWITTER/WEB models) plus the
//     per-workload sequential reference data every other bench
//     normalizes against — unchanged from the original inventory.
//
//   bench_table1_graphs                           # synthetic only (none fetched)
//   bench_table1_graphs --graph-dir data/dimacs/cache --graph-cache /tmp/bin
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <limits>
#include <set>

#include "graph/dimacs_catalog.h"
#include "harness/bench_main.h"
#include "registry/graph_registry.h"

namespace {

using namespace smq;

struct MeasuredProps {
  std::uint64_t vertices = 0;
  std::uint64_t arcs = 0;
  double avg_degree = 0;
  std::size_t max_degree = 0;
  Weight min_weight = 0;
  Weight max_weight = 0;
};

MeasuredProps measure(const Graph& g) {
  MeasuredProps p;
  p.vertices = g.num_vertices();
  p.arcs = g.num_edges();
  p.avg_degree = p.vertices == 0 ? 0 : double(p.arcs) / double(p.vertices);
  p.min_weight = std::numeric_limits<Weight>::max();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    p.max_degree = std::max(p.max_degree, g.out_degree(v));
  }
  for (const Graph::Neighbor& n : g.adjacency()) {
    p.min_weight = std::min(p.min_weight, n.weight);
    p.max_weight = std::max(p.max_weight, n.weight);
  }
  if (p.arcs == 0) p.min_weight = 0;
  return p;
}

/// Paper-vs-measured for every locally available catalog graph.
/// Returns false on any property mismatch.
bool validate_dimacs_graphs(const std::string& dir,
                            const std::string& cache_dir) {
  TablePrinter table({"graph", "paper |V|", "measured |V|", "paper |E|",
                      "measured |E|", "deg avg", "deg max", "w min", "w max",
                      "status"});
  bool all_ok = true;
  std::size_t present = 0;
  for (const DimacsGraphInfo& info : dimacs_catalog()) {
    if (!std::filesystem::exists(dimacs_gr_path(info, dir))) continue;
    ++present;

    ParamMap params;
    params.set("dir", dir);
    GraphInstance inst;
    try {
      inst = GraphRegistry::instance().create_cached(info.key, params,
                                                     cache_dir);
    } catch (const std::exception& e) {
      std::cerr << "FAIL loading " << info.key << ": " << e.what() << "\n";
      all_ok = false;
      continue;
    }
    const MeasuredProps p = measure(*inst.graph);

    // Table 1 pins |V| and |E| exactly. Road-network sanity on the
    // rest: positive weights (SSSP/A* assume them) and the bounded
    // out-degree real road junctions have.
    const bool ok = p.vertices == info.vertices && p.arcs == info.arcs &&
                    p.min_weight > 0 && p.max_degree <= 16;
    all_ok = all_ok && ok;
    table.add_row({std::string(info.key) + " (" + info.label + ")",
                   std::to_string(info.vertices), std::to_string(p.vertices),
                   std::to_string(info.arcs), std::to_string(p.arcs),
                   TablePrinter::fmt(p.avg_degree),
                   std::to_string(p.max_degree), std::to_string(p.min_weight),
                   std::to_string(p.max_weight), ok ? "OK" : "MISMATCH"});
  }
  if (present == 0) {
    std::cout << "no DIMACS road networks under '" << dir
              << "' — fetch some with:\n  python3 tools/fetch_dimacs.py "
                 "--graphs west --graph-cache "
              << dir << "\n";
    return true;
  }
  table.print(std::cout);
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const ArgParser args(argc, argv);
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Table 1: input graphs", opts);

  const std::string graph_dir = args.get("graph-dir", default_dimacs_dir());
  const std::string graph_cache = args.get("graph-cache", "");

  std::cout << "Real road networks (paper Table 1 vs measured, dir="
            << graph_dir << "):\n";
  const bool dimacs_ok = validate_dimacs_graphs(graph_dir, graph_cache);
  std::cout << "\n";

  std::vector<Workload> workloads = standard_workloads(opts.subset);

  std::cout << "Synthetic stand-ins:\n";
  TablePrinter graphs({"graph", "|V|", "|E|", "description"});
  std::set<const Graph*> printed;
  for (const Workload& w : workloads) {
    if (!printed.insert(w.graph.get()).second) continue;
    const std::string label = w.name.substr(w.name.find(' ') + 1);
    graphs.add_row({label, std::to_string(w.graph->num_vertices()),
                    std::to_string(w.graph->num_edges()),
                    w.graph->description()});
  }
  graphs.print(std::cout);

  std::cout << "\nSequential reference (exact priority queue):\n";
  TablePrinter refs({"benchmark", "ref tasks", "ref answer", "seq time ms"});
  for (Workload& w : workloads) {
    prepare_reference(w);
    refs.add_row({w.name, std::to_string(w.reference_tasks),
                  std::to_string(w.reference_answer),
                  TablePrinter::fmt(w.reference_seconds * 1e3)});
  }
  refs.print(std::cout);

  if (!dimacs_ok) {
    std::cerr << "\nERROR: at least one DIMACS graph failed Table 1 "
                 "validation\n";
    return 1;
  }
  return 0;
}
