// Table 1: input graph inventory — |V|, |E|, description — for the
// synthetic stand-ins of the paper's USA / WEST / TWITTER / WEB inputs,
// plus the per-workload sequential reference data every other bench
// normalizes against.
#include <iostream>
#include <set>

#include "harness/bench_main.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Table 1: input graphs", opts);

  std::vector<Workload> workloads = standard_workloads(opts.subset);

  TablePrinter graphs({"graph", "|V|", "|E|", "description"});
  std::set<const Graph*> printed;
  for (const Workload& w : workloads) {
    if (!printed.insert(w.graph.get()).second) continue;
    const std::string label = w.name.substr(w.name.find(' ') + 1);
    graphs.add_row({label, std::to_string(w.graph->num_vertices()),
                    std::to_string(w.graph->num_edges()),
                    w.graph->description()});
  }
  graphs.print(std::cout);

  std::cout << "\nSequential reference (exact priority queue):\n";
  TablePrinter refs({"benchmark", "ref tasks", "ref answer", "seq time ms"});
  for (Workload& w : workloads) {
    prepare_reference(w);
    refs.add_row({w.name, std::to_string(w.reference_tasks),
                  std::to_string(w.reference_answer),
                  TablePrinter::fmt(w.reference_seconds * 1e3)});
  }
  refs.print(std::cout);
  return 0;
}
