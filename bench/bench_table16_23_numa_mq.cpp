// Tables 16-23 (Appendix E.1-E.4): NUMA weight K ablation for the four
// optimized Multi-Queue combos. K = 1 disables the NUMA weighting;
// larger K biases queue sampling toward the thread's own (virtual) node.
//
// The K grid is the run driver's NUMA sweep grid (registry/numa_grid.h)
// and every configuration is a (registry key, ParamMap) pair executed
// through the shared registry runners — the same code path as
// `smq_run --numa-grid`, so the bench and the driver can never disagree
// about what a grid point means. The TL/TL combo goes through the
// mq-tl-p16 preset key to exercise the named-preset path. Reports
// speedup vs classic MQ (C = 4), the measured remote-access fraction of
// NUMA-sampled queue touches, and the analytic "NUMA-friendliness" E
// from Section 4.
#include <iostream>

#include "harness/bench_main.h"
#include "registry/numa_grid.h"
#include "sched/topology.h"

namespace {

using namespace smq;
using namespace smq::bench;

struct Mode {
  std::string name;   // display label
  std::string sched;  // SchedulerRegistry key (preset or base family)
  ParamMap params;    // combo knobs on top of the key
};

ParamMap combo(const char* insert, const char* del) {
  ParamMap p;
  p.set("insert-policy", insert);
  p.set("delete-policy", del);
  p.set("p-insert", "1/16");
  p.set("p-delete", "1/16");
  p.set("insert-batch", "16");
  p.set("delete-batch", "16");
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Tables 16-23: NUMA weight K ablation, optimized MQ", opts);

  const unsigned numa_nodes = opts.max_threads >= 4 ? 2 : 1;
  const std::string grid_spec =
      "nodes=" + std::to_string(numa_nodes) +
      (opts.full ? ":k=1,2,4,8,16,32,64,128,256" : ":k=1,8,64");
  const std::vector<NumaGridPoint> grid = parse_numa_grid(grid_spec);

  // TL/TL is the registry preset; the mixed combos configure the base
  // mq-opt family directly.
  const std::vector<Mode> modes{
      {"TL/TL", "mq-tl-p16", {}},
      {"TL/B", "mq-opt", combo("local", "batch")},
      {"B/TL", "mq-opt", combo("batch", "local")},
      {"B/B", "mq-opt", combo("batch", "batch")},
  };
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  // Analytic expectation from Section 4, via the same helper the run
  // driver records per JSON row.
  std::cout << "analytic internal fraction E for " << numa_nodes
            << " virtual nodes (" << grid_spec << "):";
  for (const NumaGridPoint& point : grid) {
    std::cout << "  K=" << point.k << ": "
              << TablePrinter::fmt(
                     expected_internal_fraction(point, opts.max_threads));
  }
  std::cout << "\n\n";

  for (Workload& w : workloads) {
    ParamMap baseline;
    baseline.set("c", "4");
    const Measurement base = run_registry_measurement(
        w, "mq", baseline, opts.max_threads, opts.repetitions);
    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    std::vector<std::string> headers{"combo"};
    for (const NumaGridPoint& point : grid) {
      headers.push_back("K=" + std::to_string(static_cast<int>(point.k)));
    }
    TablePrinter table(std::move(headers));
    for (const Mode& mode : modes) {
      std::vector<std::string> row{mode.name};
      double best = 0;
      std::size_t best_col = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        ParamMap params = mode.params;
        apply_numa_point(params, grid[i]);
        const Measurement m = run_registry_measurement(
            w, mode.sched, params, opts.max_threads, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        // speedup plus the measured remote share of sampled touches.
        std::string cell = m.valid ? TablePrinter::fmt(speedup) : "INVALID";
        if (m.sampled_accesses > 0) {
          cell += " r=" + TablePrinter::fmt(m.remote_frac);
        }
        row.push_back(std::move(cell));
        if (speedup > best) {
          best = speedup;
          best_col = i + 1;
        }
      }
      row[best_col] += "*";
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "speedup vs MQ(C=4); K=1 is the non-NUMA algorithm; r= is the "
               "measured remote\nfraction of NUMA-sampled queue touches; (*) "
               "best K per row.\n";
  return 0;
}
