// Tables 16-23 (Appendix E.1-E.4): NUMA weight K ablation for the four
// optimized Multi-Queue combos. K = 1 disables the NUMA weighting;
// larger K biases queue sampling toward the thread's own (virtual) node.
// Reports speedup vs classic MQ (C = 4) plus the measured remote-access
// fraction and the analytic "NUMA-friendliness" E from Section 4.
#include <iostream>

#include "harness/bench_main.h"
#include "sched/topology.h"

namespace {

using namespace smq;
using namespace smq::bench;

struct Mode {
  std::string name;
  InsertPolicy insert;
  DeletePolicy del;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Tables 16-23: NUMA weight K ablation, optimized MQ", opts);

  const std::vector<double> ks =
      opts.full ? std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256}
                : std::vector<double>{1, 8, 64};
  const std::vector<Mode> modes{
      {"TL/TL", InsertPolicy::kTemporalLocality, DeletePolicy::kTemporalLocality},
      {"TL/B", InsertPolicy::kTemporalLocality, DeletePolicy::kBatching},
      {"B/TL", InsertPolicy::kBatching, DeletePolicy::kTemporalLocality},
      {"B/B", InsertPolicy::kBatching, DeletePolicy::kBatching},
  };
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();
  const unsigned numa_nodes = opts.max_threads >= 4 ? 2 : 1;

  // Analytic expectation from Section 4.
  Topology topo(opts.max_threads, numa_nodes);
  std::cout << "analytic internal fraction E for "
            << numa_nodes << " virtual nodes:";
  for (double k : ks) {
    std::cout << "  K=" << k << ": "
              << TablePrinter::fmt(topo.expected_internal_fraction(k));
  }
  std::cout << "\n\n";

  for (Workload& w : workloads) {
    SchedulerSpec baseline;
    baseline.kind = SchedKind::kClassicMq;
    baseline.mq_c = 4;
    const Measurement base =
        run_measurement(w, baseline, opts.max_threads, opts.repetitions);
    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    std::vector<std::string> headers{"combo"};
    for (double k : ks) {
      headers.push_back("K=" + std::to_string(static_cast<int>(k)));
    }
    TablePrinter table(std::move(headers));
    for (const Mode& mode : modes) {
      std::vector<std::string> row{mode.name};
      double best = 0;
      std::size_t best_col = 0;
      for (std::size_t i = 0; i < ks.size(); ++i) {
        SchedulerSpec spec;
        spec.kind = SchedKind::kOptimizedMq;
        spec.insert_policy = mode.insert;
        spec.delete_policy = mode.del;
        spec.p_insert_change = 1.0 / 16;
        spec.p_delete_change = 1.0 / 16;
        spec.insert_batch = 16;
        spec.delete_batch = 16;
        spec.numa_nodes = numa_nodes;
        spec.numa_k = ks[i];
        const Measurement m =
            run_measurement(w, spec, opts.max_threads, opts.repetitions);
        const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
        row.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
        if (speedup > best) {
          best = speedup;
          best_col = i + 1;
        }
      }
      row[best_col] += "*";
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "speedup vs MQ(C=4); K=1 is the non-NUMA algorithm; (*) best "
               "K per row.\n";
  return 0;
}
