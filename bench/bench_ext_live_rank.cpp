// Extension bench: empirical rank error of the *actual implementations*
// (live rank probe), complementing bench_theorem1_rank_bounds which
// simulates the analytical model. Demonstrates that the implementation
// details (stealing buffers, batching, locks) preserve the rank
// behaviour Theorem 1 predicts — the paper's central "analytically
// reasoned design still wins" argument.
#include <iostream>

#include "core/stealing_multiqueue.h"
#include "harness/bench_main.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/reld.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "rank/live_rank.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Extension: live rank probe of real implementations",
                 opts);

  const std::size_t elements = opts.full ? 200000 : 50000;
  const unsigned threads = opts.max_threads;

  TablePrinter table({"scheduler", "mean rank", "max rank"});
  auto probe = [&](const std::string& name, auto&& sched) {
    const LiveRankResult r = measure_live_rank(sched, elements, 99);
    table.add_row({name, TablePrinter::fmt(r.mean_rank),
                   std::to_string(r.max_rank)});
  };

  probe("SMQ heap (steal 1, p=1/2)",
        StealingMultiQueue<>(threads, {.steal_size = 1, .p_steal = 0.5}));
  probe("SMQ heap (steal 4, p=1/8)",
        StealingMultiQueue<>(threads, {.steal_size = 4, .p_steal = 0.125}));
  probe("SMQ heap (steal 64, p=1/8)",
        StealingMultiQueue<>(threads, {.steal_size = 64, .p_steal = 0.125}));
  probe("SMQ heap (steal 4, p=1/64)",
        StealingMultiQueue<>(threads, {.steal_size = 4, .p_steal = 1.0 / 64}));
  probe("SMQ skip-list (steal 4, p=1/8)",
        StealingMultiQueue<SequentialSkipList>(
            threads, {.steal_size = 4, .p_steal = 0.125}));
  probe("classic MQ (C=2)",
        ClassicMultiQueue(threads, {.queue_multiplier = 2}));
  probe("classic MQ (C=8)",
        ClassicMultiQueue(threads, {.queue_multiplier = 8}));
  {
    OptimizedMqConfig cfg;
    cfg.insert_policy = InsertPolicy::kBatching;
    cfg.insert_batch = 16;
    cfg.delete_policy = DeletePolicy::kBatching;
    cfg.delete_batch = 16;
    probe("MQ batched 16/16", OptimizedMultiQueue(threads, cfg));
  }
  probe("RELD", ReldQueue(threads, {}));
  probe("SprayList", SprayList(threads, {}));

  table.print(std::cout);
  std::cout << "\n" << elements << " elements, " << threads
            << " logical thread identities, single driver thread.\n"
            << "Expected ordering: SMQ(small batch, frequent steal) < "
               "classic MQ < SMQ(rare steal / big batch) << RELD.\n";
  return 0;
}
