// Tables 2-3: speedup of the classic Multi-Queue for queue multipliers
// C in [2, 8], at the maximum thread count, versus the sequential exact
// priority queue — reproducing the paper's finding that moderate C
// (3-6) usually wins and that the optimum is benchmark-dependent.
#include <iostream>

#include "harness/bench_main.h"

int main(int argc, char** argv) {
  using namespace smq;
  using namespace smq::bench;
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Tables 2-3: classic MQ speedup vs queue multiplier C",
                 opts);

  const std::vector<unsigned> multipliers =
      opts.full ? std::vector<unsigned>{2, 3, 4, 5, 6, 7, 8}
                : std::vector<unsigned>{2, 4, 6, 8};
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  std::vector<std::string> headers{"benchmark"};
  for (unsigned c : multipliers) headers.push_back("C=" + std::to_string(c));
  TablePrinter table(std::move(headers));

  for (Workload& w : workloads) {
    std::vector<std::string> row{w.name};
    double best = 0;
    std::size_t best_col = 0;
    for (std::size_t i = 0; i < multipliers.size(); ++i) {
      SchedulerSpec spec;
      spec.kind = SchedKind::kClassicMq;
      spec.mq_c = multipliers[i];
      const Measurement m =
          run_measurement(w, spec, opts.max_threads, opts.repetitions);
      row.push_back(m.valid ? TablePrinter::fmt(m.speedup_vs_seq)
                            : "INVALID");
      if (m.speedup_vs_seq > best) {
        best = m.speedup_vs_seq;
        best_col = i + 1;
      }
    }
    row[best_col] += "*";  // the paper highlights the best C in red
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(*) best C for the row; speedup vs sequential exact PQ.\n";
  return 0;
}
