// Tables 2-3: speedup of the classic Multi-Queue for queue multipliers
// C versus the sequential exact priority queue — a thin wrapper over the
// `table2_3` suite expansion (registry/suites.h): the mq-c* presets run
// through the shared registry runners (the table's speedup column is
// the rows' speedup vs the sequential reference). Identical to
// `smq_run --suite table2_3`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("table2_3", argc, argv);
}
