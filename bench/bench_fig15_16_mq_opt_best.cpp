// Figures 15-16 (Appendix C.9): head-to-head of the four classic-MQ
// optimization combos at representative parameter settings, plus the
// unoptimized classic MQ, per benchmark.
#include <iostream>

#include "harness/bench_main.h"

namespace {

using namespace smq;
using namespace smq::bench;

std::vector<SchedulerSpec> combos() {
  std::vector<SchedulerSpec> specs;
  {
    SchedulerSpec s;
    s.kind = SchedKind::kClassicMq;
    s.label = "classic";
    specs.push_back(s);
  }
  {
    SchedulerSpec s;
    s.kind = SchedKind::kOptimizedMq;
    s.label = "TL / TL";
    s.insert_policy = InsertPolicy::kTemporalLocality;
    s.delete_policy = DeletePolicy::kTemporalLocality;
    s.p_insert_change = 1.0 / 16;
    s.p_delete_change = 1.0 / 16;
    specs.push_back(s);
  }
  {
    SchedulerSpec s;
    s.kind = SchedKind::kOptimizedMq;
    s.label = "TL / Batch";
    s.insert_policy = InsertPolicy::kTemporalLocality;
    s.delete_policy = DeletePolicy::kBatching;
    s.p_insert_change = 1.0 / 16;
    s.delete_batch = 16;
    specs.push_back(s);
  }
  {
    SchedulerSpec s;
    s.kind = SchedKind::kOptimizedMq;
    s.label = "Batch / TL";
    s.insert_policy = InsertPolicy::kBatching;
    s.delete_policy = DeletePolicy::kTemporalLocality;
    s.insert_batch = 16;
    s.p_delete_change = 1.0 / 16;
    specs.push_back(s);
  }
  {
    SchedulerSpec s;
    s.kind = SchedKind::kOptimizedMq;
    s.label = "Batch / Batch";
    s.insert_policy = InsertPolicy::kBatching;
    s.delete_policy = DeletePolicy::kBatching;
    s.insert_batch = 16;
    s.delete_batch = 16;
    specs.push_back(s);
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_preamble("Figures 15-16: MQ optimization combo comparison", opts);

  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  TablePrinter table(
      {"benchmark", "classic", "TL/TL", "TL/B", "B/TL", "B/B",
       "best work"});
  for (Workload& w : workloads) {
    std::vector<std::string> row{w.name};
    double best_speed = 0;
    double best_work = 0;
    for (const SchedulerSpec& spec : combos()) {
      const Measurement m =
          run_measurement(w, spec, opts.max_threads, opts.repetitions);
      row.push_back(m.valid ? TablePrinter::fmt(m.speedup_vs_seq)
                            : "INVALID");
      if (m.speedup_vs_seq > best_speed) {
        best_speed = m.speedup_vs_seq;
        best_work = m.work_increase;
      }
    }
    row.push_back(TablePrinter::fmt(best_work));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nspeedup vs sequential exact PQ at " << opts.max_threads
            << " threads.\n";
  return 0;
}
