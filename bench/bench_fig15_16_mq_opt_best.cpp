// Figures 15-16 (Appendix C.9): head-to-head of the classic-MQ
// optimization combos at representative parameter settings (p = 1/16,
// buffers of 16) — a thin wrapper over the `fig15_16` suite expansion
// (registry/suites.h): the mq-opt-{none,stick,buf,full} ablation stack
// plus the TL/B combo. Identical to `smq_run --suite fig15_16`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("fig15_16", argc, argv);
}
