#include "harness/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"

namespace smq::bench {

std::string sched_name(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSequential: return "Sequential";
    case SchedKind::kClassicMq: return "MQ";
    case SchedKind::kOptimizedMq: return "MQ Optimized";
    case SchedKind::kReld: return "RELD";
    case SchedKind::kSprayList: return "SprayList";
    case SchedKind::kObim: return "OBIM";
    case SchedKind::kPmod: return "PMOD";
    case SchedKind::kSmqHeap: return "SMQ (heap)";
    case SchedKind::kSmqSkipList: return "SMQ (skiplist)";
  }
  return "?";
}

std::string registry_key(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSequential: return "sequential";
    case SchedKind::kClassicMq: return "mq";
    case SchedKind::kOptimizedMq: return "mq-opt";
    case SchedKind::kReld: return "reld";
    case SchedKind::kSprayList: return "spraylist";
    case SchedKind::kObim: return "obim";
    case SchedKind::kPmod: return "pmod";
    case SchedKind::kSmqHeap: return "smq";
    case SchedKind::kSmqSkipList: return "smq-skiplist";
  }
  return "?";
}

std::string SchedulerSpec::display_name() const {
  return label.empty() ? sched_name(kind) : label;
}

ParamMap SchedulerSpec::to_params() const {
  ParamMap params;
  params.set("seed", std::to_string(seed));
  switch (kind) {
    case SchedKind::kSequential:
      break;
    case SchedKind::kClassicMq:
      params.set("c", std::to_string(mq_c));
      break;
    case SchedKind::kOptimizedMq:
      params.set("c", std::to_string(mq_c));
      params.set("insert-policy",
                 insert_policy == InsertPolicy::kBatching ? "batch" : "local");
      params.set("delete-policy",
                 delete_policy == DeletePolicy::kBatching ? "batch" : "local");
      params.set("insert-batch", std::to_string(insert_batch));
      params.set("delete-batch", std::to_string(delete_batch));
      params.set("p-insert", std::to_string(p_insert_change));
      params.set("p-delete", std::to_string(p_delete_change));
      break;
    case SchedKind::kReld:
      break;
    case SchedKind::kSprayList:
      break;
    case SchedKind::kObim:
    case SchedKind::kPmod:
      params.set("chunk-size", std::to_string(chunk_size));
      params.set("delta-shift", std::to_string(delta_shift));
      break;
    case SchedKind::kSmqHeap:
    case SchedKind::kSmqSkipList:
      params.set("steal-size", std::to_string(steal_size));
      params.set("p-steal", std::to_string(p_steal));
      break;
  }
  if (numa_nodes > 1) {
    params.set("numa", "nodes=" + std::to_string(numa_nodes) +
                           ",k=" + std::to_string(numa_k));
  }
  return params;
}

namespace {

/// The AlgorithmRegistry key for a workload's algorithm.
std::string algo_key(Algo algo) {
  switch (algo) {
    case Algo::kSssp: return "sssp";
    case Algo::kBfs: return "bfs";
    case Algo::kAstar: return "astar";
    case Algo::kMst: return "boruvka";
  }
  return "?";
}

/// View a bench workload as the registry's graph-instance shape.
GraphInstance as_instance(const Workload& w) {
  GraphInstance inst;
  inst.graph = w.graph;
  inst.name = w.name;
  inst.default_source = w.source;
  inst.default_target = w.target;
  inst.weight_scale = w.weight_scale;
  return inst;
}

}  // namespace

Measurement run_registry_measurement(Workload& w, const std::string& sched,
                                     const ParamMap& params, unsigned threads,
                                     int repetitions) {
  prepare_reference(w);

  const SchedulerEntry* entry = SchedulerRegistry::instance().find(sched);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scheduler: " + sched);
  }
  const AlgorithmEntry* algo =
      AlgorithmRegistry::instance().find(algo_key(w.algo));
  if (algo == nullptr) {
    throw std::invalid_argument("unknown algorithm: " + algo_key(w.algo));
  }
  const unsigned run_threads = effective_threads(*entry, threads);
  const GraphInstance instance = as_instance(w);

  Measurement best;
  for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
    AnyScheduler scheduler = entry->make(run_threads, params);
    const AlgoResult result =
        algo->run(instance, scheduler, run_threads, params, nullptr);
    Measurement m;
    m.seconds = result.run.seconds;
    m.tasks = result.run.stats.pops;
    m.work_increase = result.run.work_increase(w.reference_tasks);
    m.speedup_vs_seq =
        result.run.seconds > 0 ? w.reference_seconds / result.run.seconds : 0;
    m.valid = result.answer == w.reference_answer;
    m.sampled_accesses = result.run.stats.sampled_accesses;
    m.remote_accesses = result.run.stats.remote_accesses;
    m.remote_frac = result.run.stats.remote_frac();
    if (!best.valid || (m.valid && m.seconds < best.seconds)) best = m;
  }
  return best;
}

Measurement run_measurement(Workload& w, const SchedulerSpec& spec,
                            unsigned threads, int repetitions) {
  return run_registry_measurement(w, registry_key(spec.kind), spec.to_params(),
                                  threads, repetitions);
}

}  // namespace smq::bench
