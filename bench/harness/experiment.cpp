#include "harness/experiment.h"

#include <optional>

#include "algorithms/astar.h"
#include "algorithms/bfs.h"
#include "algorithms/boruvka.h"
#include "algorithms/sssp.h"
#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/sequential_scheduler.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "sched/topology.h"

namespace smq::bench {

std::string sched_name(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSequential: return "Sequential";
    case SchedKind::kClassicMq: return "MQ";
    case SchedKind::kOptimizedMq: return "MQ Optimized";
    case SchedKind::kReld: return "RELD";
    case SchedKind::kSprayList: return "SprayList";
    case SchedKind::kObim: return "OBIM";
    case SchedKind::kPmod: return "PMOD";
    case SchedKind::kSmqHeap: return "SMQ (heap)";
    case SchedKind::kSmqSkipList: return "SMQ (skiplist)";
  }
  return "?";
}

std::string SchedulerSpec::display_name() const {
  return label.empty() ? sched_name(kind) : label;
}

namespace {

/// Run the workload's algorithm through an already-built scheduler.
template <typename Sched>
std::pair<RunResult, std::uint64_t> run_algo(Workload& w, Sched& sched,
                                             unsigned threads) {
  switch (w.algo) {
    case Algo::kSssp: {
      ShortestPathResult r = parallel_sssp(*w.graph, w.source, sched, threads);
      std::uint64_t checksum = 0;
      for (const std::uint64_t d : r.distances) {
        if (d != DistanceArray::kUnreached) checksum += d;
      }
      return {r.run, checksum};
    }
    case Algo::kBfs: {
      ShortestPathResult r = parallel_bfs(*w.graph, w.source, sched, threads);
      std::uint64_t checksum = 0;
      for (const std::uint64_t d : r.distances) {
        if (d != DistanceArray::kUnreached) checksum += d;
      }
      return {r.run, checksum};
    }
    case Algo::kAstar: {
      AStarResult r = parallel_astar(*w.graph, w.source, w.target, sched,
                                     threads, w.weight_scale);
      return {r.run, r.distance};
    }
    case Algo::kMst: {
      MstResult r = parallel_boruvka(*w.graph, sched, threads);
      return {r.run, r.total_weight};
    }
  }
  return {};
}

/// Build the scheduler named by `spec` and run once.
std::pair<RunResult, std::uint64_t> run_once(Workload& w,
                                             const SchedulerSpec& spec,
                                             unsigned threads,
                                             const Topology* topo) {
  switch (spec.kind) {
    case SchedKind::kSequential: {
      SequentialScheduler sched;
      return run_algo(w, sched, 1);
    }
    case SchedKind::kClassicMq: {
      ClassicMultiQueue sched(
          threads, {.queue_multiplier = spec.mq_c,
                    .seed = spec.seed,
                    .topology = topo,
                    .numa_weight_k = spec.numa_k});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kOptimizedMq: {
      OptimizedMultiQueue sched(
          threads, {.queue_multiplier = spec.mq_c,
                    .insert_policy = spec.insert_policy,
                    .delete_policy = spec.delete_policy,
                    .p_insert_change = spec.p_insert_change,
                    .p_delete_change = spec.p_delete_change,
                    .insert_batch = spec.insert_batch,
                    .delete_batch = spec.delete_batch,
                    .seed = spec.seed,
                    .topology = topo,
                    .numa_weight_k = spec.numa_k});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kReld: {
      ReldQueue sched(threads, {.seed = spec.seed});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kSprayList: {
      SprayList sched(threads, {.seed = spec.seed});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kObim: {
      Obim sched(threads, {.chunk_size = spec.chunk_size,
                           .delta_shift = spec.delta_shift,
                           .topology = topo});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kPmod: {
      Pmod sched(threads, {.chunk_size = spec.chunk_size,
                           .delta_shift = spec.delta_shift,
                           .topology = topo});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kSmqHeap: {
      StealingMultiQueue<DAryHeap<Task, 4>> sched(
          threads, {.steal_size = spec.steal_size,
                    .p_steal = spec.p_steal,
                    .seed = spec.seed,
                    .topology = topo,
                    .numa_weight_k = spec.numa_k});
      return run_algo(w, sched, threads);
    }
    case SchedKind::kSmqSkipList: {
      StealingMultiQueue<SequentialSkipList> sched(
          threads, {.steal_size = spec.steal_size,
                    .p_steal = spec.p_steal,
                    .seed = spec.seed,
                    .topology = topo,
                    .numa_weight_k = spec.numa_k});
      return run_algo(w, sched, threads);
    }
  }
  return {};
}

}  // namespace

Measurement run_measurement(Workload& w, const SchedulerSpec& spec,
                            unsigned threads, int repetitions) {
  prepare_reference(w);
  std::optional<Topology> topo;
  if (spec.numa_nodes > 1) topo.emplace(threads, spec.numa_nodes);

  Measurement best;
  for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
    auto [run, answer] =
        run_once(w, spec, threads, topo ? &*topo : nullptr);
    Measurement m;
    m.seconds = run.seconds;
    m.tasks = run.stats.pops;
    m.work_increase = run.work_increase(w.reference_tasks);
    m.speedup_vs_seq =
        run.seconds > 0 ? w.reference_seconds / run.seconds : 0;
    m.valid = answer == w.reference_answer;
    if (!best.valid || (m.valid && m.seconds < best.seconds)) best = m;
  }
  return best;
}

}  // namespace smq::bench
