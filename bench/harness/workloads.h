// The benchmark workload registry — Table 1 of the paper, materialized.
//
// Twelve (algorithm, graph) pairs mirroring the paper's evaluation:
// SSSP and BFS on two road-like graphs (USA/WEST stand-ins) and two
// power-law graphs (TWITTER/WEB stand-ins), A* and Boruvka MST on the
// road graphs. Graph sizes scale with SMQ_BENCH_SCALE (default 1 keeps
// every bench laptop-fast); passing --graph <file.gr> to a bench swaps
// in a real DIMACS input.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace smq::bench {

enum class Algo { kSssp, kBfs, kAstar, kMst };

std::string algo_name(Algo algo);

struct Workload {
  std::string name;  // e.g. "SSSP USA"
  Algo algo = Algo::kSssp;
  std::shared_ptr<const Graph> graph;
  VertexId source = 0;
  VertexId target = 0;        // A* only
  double weight_scale = 100;  // A* heuristic scale (road generator's)

  // Sequential-oracle data, filled by prepare_reference():
  std::uint64_t reference_tasks = 0;   // work-increase denominator
  std::uint64_t reference_answer = 0;  // checksum for validation
  double reference_seconds = 0;        // sequential exact-PQ wall time
  bool prepared = false;
};

/// Scale factor from SMQ_BENCH_SCALE (sqrt-applied to vertex counts).
double bench_scale();

/// Max thread count from SMQ_BENCH_THREADS (default 8).
unsigned bench_max_threads();

/// Thread counts to sweep: 1, 2, 4, ..., bench_max_threads().
std::vector<unsigned> bench_thread_counts();

/// The twelve paper benchmarks. `subset` filters by case-insensitive
/// substring (empty = all).
std::vector<Workload> standard_workloads(const std::string& subset = "");

/// A small fixed workload set for smoke-testing benches (--quick).
std::vector<Workload> quick_workloads();

/// Compute the sequential oracle (distances checksum, reference task
/// count, sequential wall time). Idempotent.
void prepare_reference(Workload& workload);

}  // namespace smq::bench
