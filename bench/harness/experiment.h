// Experiment runner: (workload, scheduler spec, thread count) -> metrics.
//
// Every bench binary expresses its table/figure as a sweep over
// SchedulerSpec values and calls run_measurement(). Scheduler
// construction and algorithm dispatch go through the registry subsystem
// (src/registry/), so the bench sources stay declarative and no bench
// hand-lists template instantiations; SchedulerSpec survives as a thin
// typed veneer over a registry (name, ParamMap) pair.
#pragma once

#include <cstdint>
#include <string>

#include "harness/workloads.h"
#include "queues/mq_variants.h"
#include "registry/params.h"

namespace smq::bench {

enum class SchedKind {
  kSequential,   // exact single-thread priority queue (speedup baseline)
  kClassicMq,    // Listing 1
  kOptimizedMq,  // batching / temporal-locality variants (Appendix C)
  kReld,
  kSprayList,
  kObim,
  kPmod,
  kSmqHeap,      // the paper's contribution, d-ary heap local queues
  kSmqSkipList,  // Appendix D variant
};

std::string sched_name(SchedKind kind);

/// The SchedulerRegistry key this kind dispatches to.
std::string registry_key(SchedKind kind);

struct SchedulerSpec {
  SchedKind kind = SchedKind::kSmqHeap;
  std::string label;  // optional display override

  // Classic / optimized MQ.
  unsigned mq_c = 4;
  InsertPolicy insert_policy = InsertPolicy::kTemporalLocality;
  DeletePolicy delete_policy = DeletePolicy::kTemporalLocality;
  double p_insert_change = 1.0;
  double p_delete_change = 1.0;
  std::size_t insert_batch = 1;
  std::size_t delete_batch = 1;

  // SMQ.
  std::size_t steal_size = 4;
  double p_steal = 1.0 / 8.0;

  // OBIM / PMOD.
  unsigned delta_shift = 10;
  std::size_t chunk_size = 64;

  // NUMA simulation: 0 nodes => UMA; K is the remote weight divisor.
  unsigned numa_nodes = 0;
  double numa_k = 1.0;

  std::uint64_t seed = 1;

  std::string display_name() const;

  /// Lower the typed fields into registry tunables for registry_key(kind).
  ParamMap to_params() const;
};

struct Measurement {
  double seconds = 0;
  std::uint64_t tasks = 0;      // executed (popped) tasks
  double work_increase = 0;     // tasks / reference_tasks
  double speedup_vs_seq = 0;    // reference_seconds / seconds
  bool valid = false;           // answer matched the sequential oracle
  // NUMA attribution (zeros unless the run simulated a topology): queue
  // touches routed through the weighted sampler, and the remote share.
  std::uint64_t sampled_accesses = 0;
  std::uint64_t remote_accesses = 0;
  double remote_frac = 0;
};

/// Run `workload` under `spec` with `threads` threads, best of
/// `repetitions` wall times (tasks from the same best run). Calls
/// prepare_reference() on the workload if needed.
Measurement run_measurement(Workload& workload, const SchedulerSpec& spec,
                            unsigned threads, int repetitions = 1);

/// Registry-native entry point: run `workload` under the scheduler
/// registered as `sched` configured by `params`. Benches that enumerate
/// the registry directly (rather than via SchedKind) use this.
Measurement run_registry_measurement(Workload& workload,
                                     const std::string& sched,
                                     const ParamMap& params, unsigned threads,
                                     int repetitions = 1);

}  // namespace smq::bench
