#include "harness/workloads.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "algorithms/astar.h"
#include "algorithms/bfs.h"
#include "algorithms/boruvka.h"
#include "algorithms/sssp.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/timer.h"

namespace smq::bench {

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kSssp: return "SSSP";
    case Algo::kBfs: return "BFS";
    case Algo::kAstar: return "A*";
    case Algo::kMst: return "MST";
  }
  return "?";
}

double bench_scale() { return env_double("SMQ_BENCH_SCALE", 1.0); }

unsigned bench_max_threads() {
  return static_cast<unsigned>(env_int("SMQ_BENCH_THREADS", 8));
}

std::vector<unsigned> bench_thread_counts() {
  std::vector<unsigned> counts;
  for (unsigned t = 1; t <= bench_max_threads(); t *= 2) counts.push_back(t);
  return counts;
}

namespace {

bool contains_icase(const std::string& haystack, const std::string& needle) {
  if (needle.empty()) return true;
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  return lower(haystack).find(lower(needle)) != std::string::npos;
}

struct GraphSet {
  std::shared_ptr<const Graph> usa;
  std::shared_ptr<const Graph> west;
  std::shared_ptr<const Graph> twitter;
  std::shared_ptr<const Graph> web;
};

GraphSet build_graphs(double scale) {
  // Table 1 proportions: USA ~4x WEST vertices; social graphs have ~25x
  // the edge density of the road graphs.
  const auto usa_n = static_cast<VertexId>(90000 * scale);
  const auto west_n = static_cast<VertexId>(22500 * scale);
  const unsigned rmat_big = static_cast<unsigned>(
      14 + std::max(0.0, std::round(std::log2(std::max(scale, 0.1)))));
  GraphSet set;
  set.usa = std::make_shared<Graph>(make_road_like(usa_n, {.seed = 101}));
  set.west = std::make_shared<Graph>(make_road_like(west_n, {.seed = 202}));
  set.twitter = std::make_shared<Graph>(
      make_rmat(rmat_big, {.seed = 303, .edge_factor = 16}));
  set.web = std::make_shared<Graph>(
      make_rmat(rmat_big, {.seed = 404, .edge_factor = 24, .a = 0.60,
                           .b = 0.18, .c = 0.18}));
  return set;
}

Workload make(const std::string& name, Algo algo,
              std::shared_ptr<const Graph> graph, VertexId source,
              VertexId target = 0) {
  Workload w;
  w.name = name;
  w.algo = algo;
  w.graph = std::move(graph);
  w.source = source;
  w.target = target;
  return w;
}

}  // namespace

std::vector<Workload> standard_workloads(const std::string& subset) {
  const GraphSet g = build_graphs(bench_scale());
  const VertexId usa_far = g.usa->num_vertices() - 1;
  const VertexId west_far = g.west->num_vertices() - 1;

  std::vector<Workload> all;
  all.push_back(make("SSSP USA", Algo::kSssp, g.usa, 0));
  all.push_back(make("SSSP WEST", Algo::kSssp, g.west, 0));
  all.push_back(make("SSSP TWITTER", Algo::kSssp, g.twitter, 0));
  all.push_back(make("SSSP WEB", Algo::kSssp, g.web, 0));
  all.push_back(make("BFS USA", Algo::kBfs, g.usa, 0));
  all.push_back(make("BFS WEST", Algo::kBfs, g.west, 0));
  all.push_back(make("BFS TWITTER", Algo::kBfs, g.twitter, 0));
  all.push_back(make("BFS WEB", Algo::kBfs, g.web, 0));
  all.push_back(make("A* USA", Algo::kAstar, g.usa, 0, usa_far));
  all.push_back(make("A* WEST", Algo::kAstar, g.west, 0, west_far));
  all.push_back(make("MST USA", Algo::kMst, g.usa, 0));
  all.push_back(make("MST WEST", Algo::kMst, g.west, 0));

  if (subset.empty()) return all;
  std::vector<Workload> filtered;
  for (auto& w : all) {
    if (contains_icase(w.name, subset)) filtered.push_back(std::move(w));
  }
  return filtered;
}

std::vector<Workload> quick_workloads() {
  auto road = std::make_shared<Graph>(make_road_like(10000, {.seed = 7}));
  auto social = std::make_shared<Graph>(make_rmat(11, {.seed = 7}));
  std::vector<Workload> all;
  all.push_back(make("SSSP road", Algo::kSssp, road, 0));
  all.push_back(make("SSSP social", Algo::kSssp, social, 0));
  all.push_back(make("BFS road", Algo::kBfs, road, 0));
  all.push_back(
      make("A* road", Algo::kAstar, road, 0, road->num_vertices() - 1));
  all.push_back(make("MST road", Algo::kMst, road, 0));
  return all;
}

void prepare_reference(Workload& w) {
  if (w.prepared) return;
  Timer timer;
  switch (w.algo) {
    case Algo::kSssp: {
      const SequentialSsspResult ref = sequential_sssp(*w.graph, w.source);
      w.reference_tasks = ref.settled;
      std::uint64_t checksum = 0;
      for (const std::uint64_t d : ref.distances) {
        if (d != DistanceArray::kUnreached) checksum += d;
      }
      w.reference_answer = checksum;
      break;
    }
    case Algo::kBfs: {
      const SequentialBfsResult ref = sequential_bfs(*w.graph, w.source);
      w.reference_tasks = ref.visited;
      std::uint64_t checksum = 0;
      for (const std::uint64_t d : ref.levels) {
        if (d != DistanceArray::kUnreached) checksum += d;
      }
      w.reference_answer = checksum;
      break;
    }
    case Algo::kAstar: {
      const SequentialAStarResult ref =
          sequential_astar(*w.graph, w.source, w.target, w.weight_scale);
      w.reference_tasks = ref.expanded;
      w.reference_answer = ref.distance;
      break;
    }
    case Algo::kMst: {
      const SequentialMstResult ref = sequential_kruskal(*w.graph);
      w.reference_tasks = ref.edges_in_forest;
      w.reference_answer = ref.total_weight;
      break;
    }
  }
  w.reference_seconds = timer.seconds();
  w.prepared = true;
}

}  // namespace smq::bench
