// Common entry-point helpers for bench binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "support/cli.h"

namespace smq::bench {

struct BenchOptions {
  std::string subset;      // workload name filter
  unsigned max_threads;    // top of the thread sweep
  int repetitions;
  bool full;               // full paper-sized grids vs quick default grid

  std::vector<unsigned> thread_counts() const {
    std::vector<unsigned> counts;
    for (unsigned t = 1; t <= max_threads; t *= 2) counts.push_back(t);
    return counts;
  }
};

inline BenchOptions parse_bench_options(int argc, char** argv) {
  const ArgParser args(argc, argv);
  BenchOptions opts;
  opts.subset = args.get("subset", "");
  opts.max_threads = static_cast<unsigned>(
      args.get_int("threads", static_cast<std::int64_t>(bench_max_threads())));
  opts.repetitions = static_cast<int>(args.get_int("reps", 1));
  opts.full = args.has_flag("full");
  return opts;
}

inline void print_preamble(const std::string& title,
                           const BenchOptions& opts) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << bench_scale() << " (env SMQ_BENCH_SCALE), threads<="
            << opts.max_threads << " (env SMQ_BENCH_THREADS or --threads), "
            << (opts.full ? "full" : "quick") << " grid (--full)\n\n";
}

}  // namespace smq::bench
