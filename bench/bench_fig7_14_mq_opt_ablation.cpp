// Figures 7-14 / Tables 4-11 (Appendix C): ablation of the classic
// Multi-Queue optimizations along the figures' diagonal — the
// temporal-locality stickiness sweep (mq-tl-p* presets) and the
// task-batching buffer-size sweep (mq-opt-buf) — as a thin wrapper over
// the `fig7_14` suite expansion (registry/suites.h). Identical to
// `smq_run --suite fig7_14`.
#include "registry/suite_runner.h"

int main(int argc, char** argv) {
  return smq::run_suite_main("fig7_14", argc, argv);
}
