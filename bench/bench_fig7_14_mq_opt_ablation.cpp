// Figures 7-14 / Tables 4-11 (Appendix C): ablation of the classic
// Multi-Queue optimizations. Four modes, selected with --mode:
//   tl_tl : insert = temporal locality, delete = temporal locality
//   tl_b  : insert = temporal locality, delete = task batching
//   b_tl  : insert = task batching,     delete = temporal locality
//   b_b   : insert = task batching,     delete = task batching
// Sweeps the per-side parameter (change probability 1/2^k or batch size)
// and reports speedup + work increase vs the classic MQ (C = 4).
#include <iostream>

#include "harness/bench_main.h"

namespace {

using namespace smq;
using namespace smq::bench;

struct Mode {
  std::string name;
  InsertPolicy insert;
  DeletePolicy del;
};

std::vector<double> probability_grid(bool full) {
  std::vector<double> grid;
  for (int k = 0; k <= (full ? 10 : 8); k += full ? 2 : 4) {
    grid.push_back(1.0 / static_cast<double>(1 << k));
  }
  return grid;  // 1/1 .. 1/1024
}

std::vector<std::size_t> batch_grid(bool full) {
  std::vector<std::size_t> grid;
  for (int k = 0; k <= (full ? 10 : 8); k += full ? 2 : 4) {
    grid.push_back(std::size_t{1} << k);
  }
  return grid;  // 1 .. 1024
}

std::string param_label(bool batching, double p, std::size_t b) {
  if (batching) return std::to_string(b);
  return "1/" + std::to_string(static_cast<int>(1.0 / p));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  const ArgParser args(argc, argv);
  const std::string mode_name = args.get("mode", "all");

  const std::vector<Mode> all_modes{
      {"tl_tl", InsertPolicy::kTemporalLocality, DeletePolicy::kTemporalLocality},
      {"tl_b", InsertPolicy::kTemporalLocality, DeletePolicy::kBatching},
      {"b_tl", InsertPolicy::kBatching, DeletePolicy::kTemporalLocality},
      {"b_b", InsertPolicy::kBatching, DeletePolicy::kBatching},
  };
  std::vector<Mode> modes;
  for (const Mode& m : all_modes) {
    if (mode_name == "all" || mode_name == m.name) modes.push_back(m);
  }
  print_preamble(
      "Figures 7-14 / Tables 4-11: classic MQ optimization ablation (mode=" +
          mode_name + ")",
      opts);

  const std::vector<double> probs = probability_grid(opts.full);
  const std::vector<std::size_t> batches = batch_grid(opts.full);
  std::vector<Workload> workloads =
      opts.full ? standard_workloads(opts.subset) : quick_workloads();

  for (Workload& w : workloads) {
    SchedulerSpec baseline;
    baseline.kind = SchedKind::kClassicMq;
    baseline.mq_c = 4;
    const Measurement base =
        run_measurement(w, baseline, opts.max_threads, opts.repetitions);
    std::cout << w.name << " (baseline MQ C=4: "
              << TablePrinter::fmt(base.seconds * 1e3) << " ms)\n";

    for (const Mode& mode : modes) {
      const bool insert_batching = mode.insert == InsertPolicy::kBatching;
      const bool delete_batching = mode.del == DeletePolicy::kBatching;
      const std::size_t rows = insert_batching ? batches.size() : probs.size();
      const std::size_t cols = delete_batching ? batches.size() : probs.size();

      std::vector<std::string> headers{
          std::string(insert_batching ? "ins batch" : "p_ins") + " \\ " +
          (delete_batching ? "del batch" : "p_del")};
      for (std::size_t c = 0; c < cols; ++c) {
        headers.push_back(param_label(delete_batching,
                                      probs[std::min(c, probs.size() - 1)],
                                      batches[std::min(c, batches.size() - 1)]));
      }
      TablePrinter speedups(headers);
      TablePrinter work(headers);
      double best = 0;
      std::string best_cfg = "-";

      for (std::size_t r = 0; r < rows; ++r) {
        std::vector<std::string> srow{param_label(
            insert_batching, probs[std::min(r, probs.size() - 1)],
            batches[std::min(r, batches.size() - 1)])};
        std::vector<std::string> wrow = srow;
        for (std::size_t c = 0; c < cols; ++c) {
          SchedulerSpec spec;
          spec.kind = SchedKind::kOptimizedMq;
          spec.insert_policy = mode.insert;
          spec.delete_policy = mode.del;
          spec.p_insert_change = probs[std::min(r, probs.size() - 1)];
          spec.insert_batch = batches[std::min(r, batches.size() - 1)];
          spec.p_delete_change = probs[std::min(c, probs.size() - 1)];
          spec.delete_batch = batches[std::min(c, batches.size() - 1)];
          const Measurement m =
              run_measurement(w, spec, opts.max_threads, opts.repetitions);
          const double speedup = m.seconds > 0 ? base.seconds / m.seconds : 0;
          srow.push_back(m.valid ? TablePrinter::fmt(speedup) : "INVALID");
          wrow.push_back(TablePrinter::fmt(m.work_increase));
          if (speedup > best) {
            best = speedup;
            best_cfg = srow.front() + " x " + headers[c + 1];
          }
        }
        speedups.add_row(std::move(srow));
        work.add_row(std::move(wrow));
      }
      std::cout << "mode " << mode.name << " speedup vs MQ(C=4):\n";
      speedups.print(std::cout);
      std::cout << "mode " << mode.name << " work increase:\n";
      work.print(std::cout);
      std::cout << "best: " << best_cfg << " (" << TablePrinter::fmt(best)
                << "x)\n\n";
    }
  }
  return 0;
}
