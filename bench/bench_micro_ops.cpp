// Micro op-throughput benchmarks (google-benchmark): raw insert/delete
// cost of each scheduler under a synthetic hold-the-size workload.
// Quantifies the paper's Section 2 claims: batching/locality lift the
// classic MQ by a small integer factor, and the SMQ's lock-free local
// path is cheaper still.
#include <benchmark/benchmark.h>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "support/rng.h"

namespace {

using namespace smq;

/// Alternate push/pop at a steady size so neither path degenerates.
template <typename Sched>
void run_mixed_ops(benchmark::State& state, Sched& sched) {
  Xoshiro256 rng(42);
  // Pre-fill.
  for (std::uint64_t i = 0; i < 1024; ++i) {
    sched.push(0, Task{rng.next_below(1 << 20), i});
  }
  std::uint64_t ops = 0;
  for (auto _ : state) {
    sched.push(0, Task{rng.next_below(1 << 20), ops});
    auto t = sched.try_pop(0);
    benchmark::DoNotOptimize(t);
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) * 2);
}

void BM_ClassicMq(benchmark::State& state) {
  ClassicMultiQueue sched(1, {.queue_multiplier = 4});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_ClassicMq);

void BM_OptimizedMqBatching(benchmark::State& state) {
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kBatching;
  cfg.insert_batch = 16;
  cfg.delete_policy = DeletePolicy::kBatching;
  cfg.delete_batch = 16;
  OptimizedMultiQueue sched(1, cfg);
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_OptimizedMqBatching);

void BM_OptimizedMqTemporalLocality(benchmark::State& state) {
  OptimizedMqConfig cfg;
  cfg.p_insert_change = 1.0 / 16;
  cfg.p_delete_change = 1.0 / 16;
  OptimizedMultiQueue sched(1, cfg);
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_OptimizedMqTemporalLocality);

void BM_SmqHeap(benchmark::State& state) {
  StealingMultiQueue<> sched(1, {.steal_size = 4, .p_steal = 0.125});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_SmqHeap);

void BM_SmqSkipList(benchmark::State& state) {
  StealingMultiQueue<SequentialSkipList> sched(
      1, {.steal_size = 4, .p_steal = 0.125});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_SmqSkipList);

void BM_Reld(benchmark::State& state) {
  ReldQueue sched(1, {});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_Reld);

void BM_Obim(benchmark::State& state) {
  Obim sched(1, {.chunk_size = 64, .delta_shift = 8});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_Obim);

void BM_SprayList(benchmark::State& state) {
  SprayList sched(1, {});
  run_mixed_ops(state, sched);
}
BENCHMARK(BM_SprayList);

void BM_DAryHeapPushPop(benchmark::State& state) {
  DAryHeap<Task, 4> heap;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) heap.push(Task{rng.next_below(1 << 20), 0});
  for (auto _ : state) {
    heap.push(Task{rng.next_below(1 << 20), 0});
    benchmark::DoNotOptimize(heap.pop());
  }
}
BENCHMARK(BM_DAryHeapPushPop);

void BM_SequentialSkipListPushPop(benchmark::State& state) {
  SequentialSkipList list;
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    list.push(Task{rng.next_below(1 << 20), i});
  }
  std::uint64_t id = 1024;
  for (auto _ : state) {
    list.push(Task{rng.next_below(1 << 20), id++});
    benchmark::DoNotOptimize(list.pop());
  }
}
BENCHMARK(BM_SequentialSkipListPushPop);

}  // namespace

BENCHMARK_MAIN();
